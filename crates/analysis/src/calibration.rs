//! Estimator calibration: seeded replicates, bootstrap CIs, empirical
//! coverage and the per-regime leaderboard.
//!
//! The paper's methodological question is *which* network-size estimator a
//! passive deployment should trust under which churn regime. Point
//! estimates answer half of it; the other half is whether an estimator's
//! 95 % confidence interval means anything. This module measures exactly
//! that, over the replicated campaigns `measurement::replicate` produces:
//!
//! 1. Each replicate's vantage PID sets collapse into a
//!    [`CaptureHistory`] — one capture-occasion bitmask per observed PID —
//!    from which every capture–recapture estimator (Lincoln–Petersen,
//!    Chao1, Chao2, first-order jackknife) computes a point estimate and
//!    its *analytic* CI95, plus a seeded-**bootstrap** CI95 (percentile
//!    method over resampled capture histories; the seed derives from the
//!    campaign seed with the same SplitMix64 chain as `measurement::sweep`,
//!    so the resampling is deterministic at any thread count).
//! 2. Across the R replicates of a cell, [`calibration_report`] then
//!    measures each estimator's **signed bias** (mean estimate vs. mean
//!    ground truth), its **truth coverage** (how often an interval
//!    contains that replicate's true PID count — bias shows up here) and
//!    its **self coverage** (how often an interval contains the
//!    estimator's own cross-replicate mean — pure interval calibration,
//!    meaningful even for estimators that are biased under heterogeneous
//!    capture).
//! 3. Estimators are ranked per regime by absolute signed bias into the
//!    cell's [`leaderboard`](CalibrationCell::leaderboard) — the surface of
//!    the `repro estimators` CLI subcommand.
//! 4. Each cell also calibrates the **window** (time-sliced) histories of
//!    the primary vantage: [`WINDOW_OCCASIONS`] equal slices of the first
//!    [`WINDOW_SPAN_SECS`], measured against the span's true ever-online
//!    count. Vantage occasions saturate on long campaigns (every vantage
//!    eventually sees almost every peer, so the intervals collapse to
//!    sub-peer slivers); window occasions keep capture probability
//!    moderate, which is what makes CI95 coverage a meaningful quantity —
//!    the tier-1 coverage test (`tests/calibration_coverage.rs`) asserts
//!    its `[0.85, 0.99]` band on these cells. The lab's measured verdict:
//!    the Chao family's intervals are calibrated there, the jackknife's
//!    undercover (≈ 0.75–0.8), and Lincoln–Petersen is misspecified for
//!    serial slices ([`WINDOW_ESTIMATORS`] excludes it by design).
//!
//! Single-vantage cells have no capture structure; their cells instead
//! embed the per-replicate [`RobustnessRow`]s (byte-identical to
//! `analysis::robustness` — shared builder, pinned by
//! `tests/estimator_differential.rs`) and rank the single-vantage
//! estimators by mean absolute error. Every cell also carries the
//! Kaplan–Meier session-lifetime summary of the matching streaming
//! campaign when one is supplied — the leaderboard reads "under this churn
//! (median session X s, hazard Y/h), trust estimator Z".

use crate::robustness::{robustness_row, RobustnessRow};
use crate::survival::{analyze_survival, SurvivalAnalysis};
use crate::{report, vantage};
use jsonio::Json;
use measurement::{ReplicateSuite, StreamingCampaign, VantageCampaign};
use simclock::rng::fnv1a;
use simclock::stats::percentile_sorted;
use simclock::SimRng;

/// The capture–recapture estimators the calibration lab ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimatorKind {
    /// Chapman's bias-corrected Lincoln–Petersen (primary vs. rest).
    LincolnPetersen,
    /// Bias-corrected Chao1 over the capture-frequency histogram.
    Chao1,
    /// Classic Chao2 incidence estimator (bias-corrected at `f2 = 0`).
    Chao2,
    /// First-order jackknife with the Heltshe–Forrester variance.
    Jackknife1,
}

impl EstimatorKind {
    /// Every estimator, in report order.
    pub const ALL: [EstimatorKind; 4] = [
        EstimatorKind::LincolnPetersen,
        EstimatorKind::Chao1,
        EstimatorKind::Chao2,
        EstimatorKind::Jackknife1,
    ];

    /// Stable label used in JSON, tables and seed derivation.
    pub fn label(&self) -> &'static str {
        match self {
            EstimatorKind::LincolnPetersen => "lincoln_petersen",
            EstimatorKind::Chao1 => "chao1",
            EstimatorKind::Chao2 => "chao2",
            EstimatorKind::Jackknife1 => "jackknife1",
        }
    }

    /// Applies the estimator to a capture history. `None` below two
    /// occasions (no capture structure to exploit).
    pub fn estimate(&self, history: &CaptureHistory) -> Option<vantage::CaptureRecapture> {
        match self {
            EstimatorKind::LincolnPetersen => {
                let (n1, n2, m) = history.two_occasion_view();
                vantage::lincoln_petersen(n1, n2, m)
            }
            EstimatorKind::Chao1 => {
                let (f1, f2) = history.f1_f2();
                vantage::chao1(history.occasions, history.observed(), f1, f2)
            }
            EstimatorKind::Chao2 => {
                let (f1, f2) = history.f1_f2();
                vantage::chao2(history.occasions, history.observed(), f1, f2)
            }
            EstimatorKind::Jackknife1 => vantage::jackknife1(
                history.occasions,
                history.observed(),
                &history.uniques_per_occasion(),
            ),
        }
    }
}

/// The incidence matrix of one replicate, compressed: one bitmask per
/// observed PID with bit `i` set iff capture occasion (vantage) `i` saw
/// the PID. Mask order follows PID order, so histories are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureHistory {
    /// Number of capture occasions (vantages).
    pub occasions: usize,
    /// One occasion bitmask per observed PID.
    pub masks: Vec<u32>,
}

impl CaptureHistory {
    /// Builds the history from per-occasion sorted PID sets (the same
    /// inputs [`vantage::accumulation_rows`] consumes).
    pub fn from_sets(sets: &[Vec<p2pmodel::PeerId>]) -> CaptureHistory {
        let mut by_pid: std::collections::BTreeMap<p2pmodel::PeerId, u32> =
            std::collections::BTreeMap::new();
        for (occasion, set) in sets.iter().enumerate() {
            for pid in set {
                *by_pid.entry(*pid).or_insert(0) |= 1 << occasion;
            }
        }
        CaptureHistory {
            occasions: sets.len(),
            masks: by_pid.into_values().collect(),
        }
    }

    /// Builds the history of a vantage campaign (one occasion per deployed
    /// vantage, in deployment order).
    pub fn from_campaign(campaign: &VantageCampaign) -> CaptureHistory {
        let sets: Vec<Vec<p2pmodel::PeerId>> = campaign
            .vantages
            .iter()
            .map(|d| d.peers.keys().copied().collect())
            .collect();
        CaptureHistory::from_sets(&sets)
    }

    /// Builds a **time-sliced** history from one dataset: the first `span`
    /// of the measurement divided into `occasions` equal windows, a PID
    /// captured in window `i` iff one of its connections overlaps that
    /// window. Connections opening after the span are ignored.
    ///
    /// This is the classic trapping-occasion formulation for churn data.
    /// Vantage occasions saturate on long campaigns (every vantage
    /// eventually sees almost every peer, so recapture carries almost no
    /// information and the CIs collapse to sub-peer slivers); window
    /// occasions keep per-occasion capture probability moderate — sessions
    /// are much shorter than the campaign — which is what makes the
    /// analytic and bootstrap intervals of the benign calibration cells
    /// actually mean something. A bounded `span` (clamped to the
    /// measurement duration) keeps the closed-population violation
    /// comparable across campaigns of different length: slicing a 3-day
    /// campaign whole inflates the singleton count with turnover and
    /// destabilises the Chao family. `occasions` is clamped to `2..=32`
    /// (the mask width).
    pub fn from_time_windows(
        dataset: &measurement::MeasurementDataset,
        occasions: usize,
        span: simclock::SimDuration,
    ) -> CaptureHistory {
        let occasions = occasions.clamp(2, 32);
        let full = (dataset.ended_at - dataset.started_at).as_millis();
        let span = u128::from(span.as_millis().clamp(1, full.max(1)));
        let mut by_pid: std::collections::BTreeMap<p2pmodel::PeerId, u32> =
            std::collections::BTreeMap::new();
        for conn in &dataset.connections {
            let lo = u128::from(conn.opened_at.saturating_since(dataset.started_at).as_millis());
            if lo >= span {
                continue;
            }
            let hi = u128::from(conn.closed_at.saturating_since(dataset.started_at).as_millis())
                .min(span - 1);
            let first = ((lo * occasions as u128 / span) as usize).min(occasions - 1);
            let last = ((hi * occasions as u128 / span) as usize).min(occasions - 1);
            let mask = by_pid.entry(conn.peer).or_insert(0);
            for window in first..=last {
                *mask |= 1 << window;
            }
        }
        CaptureHistory {
            occasions,
            masks: by_pid.into_values().collect(),
        }
    }

    /// Observed PIDs (the union size).
    pub fn observed(&self) -> usize {
        self.masks.len()
    }

    /// Singleton and doubleton counts of the capture-frequency histogram.
    pub fn f1_f2(&self) -> (usize, usize) {
        let mut f1 = 0;
        let mut f2 = 0;
        for mask in &self.masks {
            match mask.count_ones() {
                1 => f1 += 1,
                2 => f2 += 1,
                _ => {}
            }
        }
        (f1, f2)
    }

    /// Occasion-unique PID counts per occasion (the jackknife's `s_j`
    /// input): entry `i` counts the PIDs seen *only* by occasion `i`.
    pub fn uniques_per_occasion(&self) -> Vec<usize> {
        let mut uniques = vec![0usize; self.occasions];
        for mask in &self.masks {
            if mask.count_ones() == 1 {
                uniques[mask.trailing_zeros() as usize] += 1;
            }
        }
        uniques
    }

    /// Lincoln–Petersen's two-occasion collapse `(n1, n2, m)`: the primary
    /// occasion vs. the union of the rest — the identical arithmetic of
    /// [`vantage::accumulation_rows`], so the point estimates agree
    /// bit-for-bit.
    pub fn two_occasion_view(&self) -> (usize, usize, usize) {
        let union = self.masks.len();
        let mut n1 = 0;
        let mut m = 0;
        for mask in &self.masks {
            if mask & 1 != 0 {
                n1 += 1;
                if mask.count_ones() >= 2 {
                    m += 1;
                }
            }
        }
        (n1, union - n1 + m, m)
    }
}

/// Percentile-bootstrap CI95s for every estimator over one capture
/// history: `replicates` resamples of the PID masks (with replacement,
/// seeded), each re-evaluated through all estimators, then the 2.5 / 97.5
/// percentiles of each estimator's bootstrap distribution.
///
/// Returns one `(kind, Option<(low, high)>)` per [`EstimatorKind::ALL`]
/// entry; `None` when the estimator never produced a value (e.g. below two
/// occasions) or `replicates == 0`. Deterministic in `seed`.
pub fn bootstrap_cis(
    history: &CaptureHistory,
    replicates: usize,
    seed: u64,
) -> Vec<(EstimatorKind, Option<(f64, f64)>)> {
    let n = history.masks.len();
    let mut distributions: Vec<Vec<f64>> =
        (0..4).map(|_| Vec::with_capacity(replicates)).collect();
    if n > 0 {
        let mut rng = SimRng::seed_from(seed);
        let mut resampled = CaptureHistory {
            occasions: history.occasions,
            masks: vec![0; n],
        };
        for _ in 0..replicates {
            for slot in resampled.masks.iter_mut() {
                *slot = history.masks[rng.index(n)];
            }
            for (k, kind) in EstimatorKind::ALL.iter().enumerate() {
                if let Some(cr) = kind.estimate(&resampled) {
                    distributions[k].push(cr.estimate);
                }
            }
        }
    }
    EstimatorKind::ALL
        .iter()
        .zip(distributions)
        .map(|(&kind, mut dist)| {
            if dist.is_empty() {
                return (kind, None);
            }
            dist.sort_by(|a, b| a.partial_cmp(b).expect("estimates are finite"));
            let low = percentile_sorted(&dist, 0.025);
            let high = percentile_sorted(&dist, 0.975);
            (kind, Some((low, high)))
        })
        .collect()
}

/// Derives the bootstrap seed of one cell replicate: the campaign seed
/// mixed with the scenario label and a fixed domain tag through the
/// sweep's SplitMix64 chain — unique per (replicate, scenario),
/// independent of scheduling.
pub fn bootstrap_seed(campaign_seed: u64, scenario_label: &str) -> u64 {
    let mut state = campaign_seed ^ fnv1a(scenario_label);
    simclock::rng::splitmix64(&mut state);
    state ^= fnv1a("bootstrap");
    simclock::rng::splitmix64(&mut state);
    state
}

/// Capture occasions of the calibration harness's time-sliced (window)
/// histories.
pub const WINDOW_OCCASIONS: usize = 12;

/// Span the window histories slice, in seconds (clamped to the campaign
/// duration): bounding the span keeps the closed-population violation
/// comparable across measurement periods of different length.
pub const WINDOW_SPAN_SECS: u64 = 86_400;

/// The estimators calibrated on window histories: the Chao family plus
/// the jackknife. Lincoln–Petersen is excluded *by design* — its
/// two-occasion collapse (first occasion vs. the rest) is misspecified
/// for serial time slices, where session persistence across the block
/// boundary makes recapture nearly certain and degenerates the interval.
pub const WINDOW_ESTIMATORS: [EstimatorKind; 3] =
    [EstimatorKind::Chao1, EstimatorKind::Chao2, EstimatorKind::Jackknife1];

/// Derives the bootstrap seed of one replicate's *window* history —
/// [`bootstrap_seed`] pushed through one more domain-tagged SplitMix64
/// step so vantage and window resampling streams never alias.
pub fn window_bootstrap_seed(campaign_seed: u64, scenario_label: &str) -> u64 {
    let mut state = bootstrap_seed(campaign_seed, scenario_label) ^ fnv1a("windows");
    simclock::rng::splitmix64(&mut state);
    state
}

/// One estimator's samples from one replicate.
#[derive(Debug, Clone, PartialEq)]
struct EstimatorSample {
    estimate: f64,
    analytic: (f64, f64),
    bootstrap: Option<(f64, f64)>,
    truth_pids: usize,
}

/// The calibration verdict of one estimator in one cell, across all
/// replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorCalibration {
    /// Estimator label (see [`EstimatorKind::label`]).
    pub estimator: String,
    /// Replicates in which the estimator produced a value.
    pub replicates_with_estimate: usize,
    /// Mean point estimate across those replicates.
    pub mean_estimate: f64,
    /// Mean ground-truth PID count across those replicates.
    pub mean_truth: f64,
    /// `(mean_estimate − mean_truth) / mean_truth` — the estimator's
    /// systematic error under this regime.
    pub signed_bias: f64,
    /// Mean per-replicate `|estimate − truth| / truth`.
    pub mean_abs_rel_error: f64,
    /// Fraction of replicates whose *analytic* CI95 contains that
    /// replicate's ground truth (bias pulls this down).
    pub coverage_truth_analytic: f64,
    /// Fraction whose *bootstrap* CI95 contains the ground truth.
    pub coverage_truth_bootstrap: Option<f64>,
    /// Fraction whose analytic CI95 contains the estimator's own
    /// cross-replicate mean — interval calibration against the sampling
    /// distribution, the quantity a well-specified CI must cover ~95 % of
    /// the time regardless of bias.
    pub coverage_self_analytic: f64,
    /// Fraction whose bootstrap CI95 contains the cross-replicate mean.
    pub coverage_self_bootstrap: Option<f64>,
    /// Mean analytic CI width relative to the mean truth.
    pub mean_rel_width_analytic: f64,
    /// Mean bootstrap CI width relative to the mean truth.
    pub mean_rel_width_bootstrap: Option<f64>,
}

impl EstimatorCalibration {
    fn from_samples(estimator: &str, samples: &[EstimatorSample]) -> Option<EstimatorCalibration> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let mean_estimate = samples.iter().map(|s| s.estimate).sum::<f64>() / n;
        let mean_truth = samples.iter().map(|s| s.truth_pids as f64).sum::<f64>() / n;
        let mean_abs_rel_error = samples
            .iter()
            .map(|s| (s.estimate - s.truth_pids as f64).abs() / (s.truth_pids as f64).max(1.0))
            .sum::<f64>()
            / n;
        let covers = |interval: (f64, f64), value: f64| interval.0 <= value && value <= interval.1;
        let fraction = |hits: usize| hits as f64 / n;
        let coverage_truth_analytic = fraction(
            samples.iter().filter(|s| covers(s.analytic, s.truth_pids as f64)).count(),
        );
        let coverage_self_analytic =
            fraction(samples.iter().filter(|s| covers(s.analytic, mean_estimate)).count());
        let mean_rel_width_analytic = samples
            .iter()
            .map(|s| (s.analytic.1 - s.analytic.0) / mean_truth.max(1.0))
            .sum::<f64>()
            / n;
        let with_bootstrap: Vec<&EstimatorSample> =
            samples.iter().filter(|s| s.bootstrap.is_some()).collect();
        let boot = |f: &dyn Fn(&EstimatorSample) -> f64| -> Option<f64> {
            if with_bootstrap.is_empty() {
                None
            } else {
                Some(with_bootstrap.iter().map(|s| f(s)).sum::<f64>() / with_bootstrap.len() as f64)
            }
        };
        let coverage_truth_bootstrap = boot(&|s| {
            f64::from(covers(s.bootstrap.expect("filtered"), s.truth_pids as f64))
        });
        let coverage_self_bootstrap =
            boot(&|s| f64::from(covers(s.bootstrap.expect("filtered"), mean_estimate)));
        let mean_rel_width_bootstrap = boot(&|s| {
            let (low, high) = s.bootstrap.expect("filtered");
            (high - low) / mean_truth.max(1.0)
        });
        Some(EstimatorCalibration {
            estimator: estimator.to_string(),
            replicates_with_estimate: samples.len(),
            mean_estimate,
            mean_truth,
            signed_bias: if mean_truth > 0.0 {
                (mean_estimate - mean_truth) / mean_truth
            } else {
                0.0
            },
            mean_abs_rel_error,
            coverage_truth_analytic,
            coverage_truth_bootstrap,
            coverage_self_analytic,
            coverage_self_bootstrap,
            mean_rel_width_analytic,
            mean_rel_width_bootstrap,
        })
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("estimator", self.estimator.as_str());
        obj.insert("replicates_with_estimate", self.replicates_with_estimate);
        obj.insert("mean_estimate", self.mean_estimate);
        obj.insert("mean_truth", self.mean_truth);
        obj.insert("signed_bias", self.signed_bias);
        obj.insert("mean_abs_rel_error", self.mean_abs_rel_error);
        obj.insert("coverage_truth_analytic", self.coverage_truth_analytic);
        let opt = |v: Option<f64>| v.map(Json::Float).unwrap_or(Json::Null);
        obj.insert("coverage_truth_bootstrap", opt(self.coverage_truth_bootstrap));
        obj.insert("coverage_self_analytic", self.coverage_self_analytic);
        obj.insert("coverage_self_bootstrap", opt(self.coverage_self_bootstrap));
        obj.insert("mean_rel_width_analytic", self.mean_rel_width_analytic);
        obj.insert("mean_rel_width_bootstrap", opt(self.mean_rel_width_bootstrap));
        obj
    }
}

/// One (churn regime × vantage count) cell of the calibration grid, across
/// all replicates.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCell {
    /// Churn-scenario label.
    pub scenario: String,
    /// Measurement-period label.
    pub period: String,
    /// Population scale.
    pub scale: f64,
    /// Vantage count of the cell.
    pub vantages: usize,
    /// Replicates run.
    pub replicates: usize,
    /// Campaign seeds of the replicates, in replicate order.
    pub seeds: Vec<u64>,
    /// Mean ground-truth PID count across replicates.
    pub truth_pids_mean: f64,
    /// Kaplan–Meier session-lifetime summary of the matching streaming
    /// campaign (when one was supplied).
    pub survival: Option<SurvivalAnalysis>,
    /// The single-vantage robustness rows, one per replicate —
    /// byte-identical to `analysis::robustness` on the same campaigns.
    pub single_vantage: Vec<RobustnessRow>,
    /// Per-estimator calibration results (empty below two vantages).
    pub estimators: Vec<EstimatorCalibration>,
    /// Per-estimator calibration over the primary vantage's **window**
    /// history ([`WINDOW_OCCASIONS`] slices of the first
    /// [`WINDOW_SPAN_SECS`]), measured against the span's true
    /// ever-online count — the benign, assumption-compatible cells the
    /// tier-1 coverage test asserts on. [`WINDOW_ESTIMATORS`] only.
    pub window_estimators: Vec<EstimatorCalibration>,
    /// Estimator labels ranked best-first: capture–recapture estimators by
    /// absolute signed bias (ties by label), or the single-vantage
    /// estimators by mean absolute error when `vantages < 2`.
    pub leaderboard: Vec<String>,
}

impl CalibrationCell {
    fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("scenario", self.scenario.as_str());
        obj.insert("period", self.period.as_str());
        obj.insert("scale", self.scale);
        obj.insert("vantages", self.vantages);
        obj.insert("replicates", self.replicates);
        obj.insert(
            "seeds",
            Json::Array(self.seeds.iter().map(|&s| Json::from(s)).collect()),
        );
        obj.insert("truth_pids_mean", self.truth_pids_mean);
        obj.insert(
            "survival",
            self.survival.as_ref().map(|s| s.to_json()).unwrap_or(Json::Null),
        );
        obj.insert(
            "single_vantage",
            Json::Array(self.single_vantage.iter().map(|r| r.to_json()).collect()),
        );
        obj.insert(
            "estimators",
            Json::Array(self.estimators.iter().map(|e| e.to_json()).collect()),
        );
        obj.insert("window_occasions", WINDOW_OCCASIONS);
        obj.insert("window_span_secs", WINDOW_SPAN_SECS);
        obj.insert(
            "window_estimators",
            Json::Array(self.window_estimators.iter().map(|e| e.to_json()).collect()),
        );
        obj.insert(
            "leaderboard",
            Json::Array(self.leaderboard.iter().map(|l| Json::from(l.as_str())).collect()),
        );
        obj
    }
}

/// The complete calibration report: one cell per churn regime.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Measurement-period label.
    pub period: String,
    /// Population scale.
    pub scale: f64,
    /// Base seed the replicate seeds derive from.
    pub base_seed: u64,
    /// Vantage count.
    pub vantages: usize,
    /// Replicates per cell.
    pub replicates: usize,
    /// Bootstrap resamples per replicate (0 = analytic CIs only).
    pub bootstrap: usize,
    /// One cell per churn regime, in scenario order.
    pub cells: Vec<CalibrationCell>,
}

/// Builds the calibration report of a replicated suite.
///
/// `suites` come from `measurement::run_replicated_vantage_suite` (every
/// replicate must cover the same scenarios in the same order); `streams`
/// optionally supplies one streaming campaign per scenario for the
/// session-lifetime (survival) context; `bootstrap` is the number of
/// bootstrap resamples per replicate (0 disables bootstrap CIs).
///
/// The output is a pure function of the inputs — nothing
/// execution-dependent — so reports are byte-identical at any thread
/// count.
///
/// # Panics
///
/// Panics if `suites` is empty or the suites' scenario lists disagree.
pub fn calibration_report(
    suites: &[ReplicateSuite],
    streams: &[StreamingCampaign],
    bootstrap: usize,
) -> CalibrationReport {
    let first = suites.first().expect("at least one replicate suite");
    assert!(
        suites.iter().all(|s| s.campaigns.len() == first.campaigns.len()),
        "every replicate must cover the same scenarios"
    );
    let scenario_count = first.campaigns.len();
    let mut cells = Vec::with_capacity(scenario_count);
    for scenario_idx in 0..scenario_count {
        let campaigns: Vec<&VantageCampaign> =
            suites.iter().map(|s| &s.campaigns[scenario_idx]).collect();
        let scenario = &campaigns[0].scenario;
        let scenario_label = scenario.churn.label().to_string();
        let vantages = campaigns[0].vantage_count();

        let single_vantage: Vec<RobustnessRow> = campaigns
            .iter()
            .map(|c| {
                robustness_row(
                    &c.vantages[0],
                    &c.scenario,
                    c.ground_truth.population_size(),
                    c.ground_truth_participants,
                )
            })
            .collect();

        let mut samples: Vec<Vec<EstimatorSample>> = vec![Vec::new(); EstimatorKind::ALL.len()];
        for campaign in &campaigns {
            let history = CaptureHistory::from_campaign(campaign);
            let truth_pids = campaign.ground_truth.population_size();
            let boots = if bootstrap > 0 && vantages >= 2 {
                bootstrap_cis(
                    &history,
                    bootstrap,
                    bootstrap_seed(campaign.scenario.seed, &scenario_label),
                )
            } else {
                EstimatorKind::ALL.iter().map(|&k| (k, None)).collect()
            };
            for (k, kind) in EstimatorKind::ALL.iter().enumerate() {
                if let Some(cr) = kind.estimate(&history) {
                    samples[k].push(EstimatorSample {
                        estimate: cr.estimate,
                        analytic: (cr.ci95_low, cr.ci95_high),
                        bootstrap: boots[k].1,
                        truth_pids,
                    });
                }
            }
        }
        let estimators: Vec<EstimatorCalibration> = EstimatorKind::ALL
            .iter()
            .zip(&samples)
            .filter_map(|(kind, s)| EstimatorCalibration::from_samples(kind.label(), s))
            .collect();

        // The window (time-sliced) histories of the primary vantage, against
        // the span's true ever-online count. Any vantage count ≥ 1 has them:
        // the occasions are time slices, not vantages.
        let mut window_samples: Vec<Vec<EstimatorSample>> =
            vec![Vec::new(); WINDOW_ESTIMATORS.len()];
        for campaign in &campaigns {
            let primary = &campaign.vantages[0];
            let history = CaptureHistory::from_time_windows(
                primary,
                WINDOW_OCCASIONS,
                simclock::SimDuration::from_secs(WINDOW_SPAN_SECS),
            );
            let span_end = primary.started_at
                + simclock::SimDuration::from_secs(WINDOW_SPAN_SECS).min(primary.duration());
            let truth_pids =
                campaign.ground_truth.ever_online_within(primary.started_at, span_end);
            let boots = if bootstrap > 0 {
                bootstrap_cis(
                    &history,
                    bootstrap,
                    window_bootstrap_seed(campaign.scenario.seed, &scenario_label),
                )
            } else {
                EstimatorKind::ALL.iter().map(|&k| (k, None)).collect()
            };
            for (w, kind) in WINDOW_ESTIMATORS.iter().enumerate() {
                let boot = boots
                    .iter()
                    .find(|(k, _)| k == kind)
                    .and_then(|(_, ci)| *ci);
                if let Some(cr) = kind.estimate(&history) {
                    window_samples[w].push(EstimatorSample {
                        estimate: cr.estimate,
                        analytic: (cr.ci95_low, cr.ci95_high),
                        bootstrap: boot,
                        truth_pids,
                    });
                }
            }
        }
        let window_estimators: Vec<EstimatorCalibration> = WINDOW_ESTIMATORS
            .iter()
            .zip(&window_samples)
            .filter_map(|(kind, s)| EstimatorCalibration::from_samples(kind.label(), s))
            .collect();

        let leaderboard = if vantages >= 2 {
            let mut ranked: Vec<(f64, String)> = estimators
                .iter()
                .map(|e| (e.signed_bias.abs(), e.estimator.clone()))
                .collect();
            ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite bias").then(a.1.cmp(&b.1)));
            ranked.into_iter().map(|(_, label)| label).collect()
        } else {
            // Single vantage: rank the §V estimators by mean absolute error
            // against the participant truth.
            let n = single_vantage.len() as f64;
            let mean_abs = |f: &dyn Fn(&RobustnessRow) -> f64| {
                single_vantage.iter().map(|r| f(r).abs()).sum::<f64>() / n.max(1.0)
            };
            let mut ranked = vec![
                (mean_abs(&|r| r.by_pids.signed_rel_error), "by_pids".to_string()),
                (mean_abs(&|r| r.by_ip_groups.signed_rel_error), "by_ip_groups".to_string()),
                (
                    mean_abs(&|r| r.core_lower_bound.signed_rel_error),
                    "core_lower_bound".to_string(),
                ),
            ];
            ranked.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite error").then(a.1.cmp(&b.1)));
            ranked.into_iter().map(|(_, label)| label).collect()
        };

        let truth_pids_mean = campaigns
            .iter()
            .map(|c| c.ground_truth.population_size() as f64)
            .sum::<f64>()
            / campaigns.len() as f64;
        let survival = streams
            .iter()
            .find(|s| s.batch.scenario.churn.label() == scenario_label)
            .map(analyze_survival);

        cells.push(CalibrationCell {
            scenario: scenario_label,
            period: scenario.period.label().to_string(),
            scale: scenario.scale,
            vantages,
            replicates: campaigns.len(),
            seeds: suites.iter().map(|s| s.seed).collect(),
            truth_pids_mean,
            survival,
            single_vantage,
            estimators,
            window_estimators,
            leaderboard,
        });
    }
    let first_scenario = &first.campaigns.first().expect("suite has scenarios").scenario;
    CalibrationReport {
        period: first_scenario.period.label().to_string(),
        scale: first_scenario.scale,
        base_seed: first.seed,
        vantages: cells.first().map(|c| c.vantages).unwrap_or(1),
        replicates: suites.len(),
        bootstrap,
        cells,
    }
}

impl CalibrationReport {
    /// Looks up the cell of a scenario by label.
    pub fn cell(&self, scenario: &str) -> Option<&CalibrationCell> {
        self.cells.iter().find(|c| c.scenario == scenario)
    }

    /// Renders the report as a [`Json`] value (deterministic: nothing
    /// execution-dependent, byte-identical at any thread count).
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("period", self.period.as_str());
        obj.insert("scale", self.scale);
        obj.insert("base_seed", self.base_seed);
        obj.insert("vantages", self.vantages);
        obj.insert("replicates", self.replicates);
        obj.insert("bootstrap", self.bootstrap);
        obj.insert(
            "cells",
            Json::Array(self.cells.iter().map(|c| c.to_json()).collect()),
        );
        obj
    }

    /// Serialises to compact JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// Serialises to pretty-printed JSON.
    pub fn to_json_string_pretty(&self) -> String {
        self.to_json().to_string_pretty()
    }

    /// Renders the per-regime leaderboard as an aligned text table: one row
    /// per (scenario, estimator), ranked best-first within each scenario.
    pub fn summary_table(&self) -> String {
        let pct = |v: f64| format!("{:+.1}%", v * 100.0);
        let cov = |v: f64| format!("{:.0}%", v * 100.0);
        let opt_cov = |v: Option<f64>| v.map(cov).unwrap_or_else(|| "-".into());
        let mut rows = Vec::new();
        for cell in &self.cells {
            let median = cell
                .survival
                .as_ref()
                .and_then(|s| s.curve.median_secs())
                .map(|secs| format!("{secs:.0}"))
                .unwrap_or_else(|| "-".into());
            if cell.estimators.is_empty() {
                for (rank, label) in cell.leaderboard.iter().enumerate() {
                    rows.push(vec![
                        cell.scenario.clone(),
                        median.clone(),
                        (rank + 1).to_string(),
                        label.clone(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                }
                continue;
            }
            for (rank, label) in cell.leaderboard.iter().enumerate() {
                let Some(e) = cell.estimators.iter().find(|e| &e.estimator == label) else {
                    continue;
                };
                rows.push(vec![
                    cell.scenario.clone(),
                    median.clone(),
                    (rank + 1).to_string(),
                    label.clone(),
                    pct(e.signed_bias),
                    cov(e.coverage_self_analytic),
                    opt_cov(e.coverage_self_bootstrap),
                    cov(e.coverage_truth_analytic),
                ]);
            }
        }
        report::text_table(
            &[
                "Scenario",
                "MedSess[s]",
                "Rank",
                "Estimator",
                "Bias",
                "SelfCov(a)",
                "SelfCov(b)",
                "TruthCov(a)",
            ],
            &rows,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use measurement::run_replicated_vantage_suite;
    use p2pmodel::PeerId;
    use population::{ChurnScenario, MeasurementPeriod};

    fn toy_history() -> CaptureHistory {
        // Occasion 0: {1, 2, 3, 4}; occasion 1: {3, 4, 5}; occasion 2: {4}.
        let sets = vec![
            (1..=4).map(PeerId::derived).collect::<Vec<_>>(),
            (3..=5).map(PeerId::derived).collect::<Vec<_>>(),
            vec![PeerId::derived(4)],
        ];
        let mut sets = sets;
        for set in &mut sets {
            set.sort();
        }
        CaptureHistory::from_sets(&sets)
    }

    #[test]
    fn capture_history_counts_match_the_accumulation_arithmetic() {
        let history = toy_history();
        assert_eq!(history.occasions, 3);
        assert_eq!(history.observed(), 5);
        // Frequencies: 1→1, 2→1, 5→1 singletons; 3→2 doubleton; 4→3.
        assert_eq!(history.f1_f2(), (3, 1));
        // n1 = 4 (occasion 0), recaptures m = {3, 4}, n2 = 5 − 4 + 2 = 3.
        assert_eq!(history.two_occasion_view(), (4, 3, 2));
        // Uniques: occasion 0 holds PIDs 1, 2; occasion 1 holds PID 5.
        assert_eq!(history.uniques_per_occasion(), vec![2, 1, 0]);
        // Estimators agree with direct calls on the same counts.
        let lp = EstimatorKind::LincolnPetersen.estimate(&history).unwrap();
        assert_eq!(lp, vantage::lincoln_petersen(4, 3, 2).unwrap());
        let c1 = EstimatorKind::Chao1.estimate(&history).unwrap();
        assert_eq!(c1, vantage::chao1(3, 5, 3, 1).unwrap());
        let c2 = EstimatorKind::Chao2.estimate(&history).unwrap();
        assert_eq!(c2, vantage::chao2(3, 5, 3, 1).unwrap());
        let jk = EstimatorKind::Jackknife1.estimate(&history).unwrap();
        assert_eq!(jk, vantage::jackknife1(3, 5, &[2, 1, 0]).unwrap());
    }

    #[test]
    fn bootstrap_cis_are_seeded_and_ordered() {
        let history = toy_history();
        let a = bootstrap_cis(&history, 100, 42);
        let b = bootstrap_cis(&history, 100, 42);
        assert_eq!(a, b, "same seed, same intervals");
        // Seed sensitivity needs a history large enough that the bootstrap
        // distribution is not a handful of discrete values.
        let big = {
            let sets: Vec<Vec<PeerId>> = vec![
                (1..=120).map(PeerId::derived).collect(),
                (80..=200).map(PeerId::derived).collect(),
                (150..=260).map(PeerId::derived).collect(),
            ];
            CaptureHistory::from_sets(&sets)
        };
        let c = bootstrap_cis(&big, 100, 42);
        let d = bootstrap_cis(&big, 100, 43);
        assert_ne!(c, d, "different seed resamples differently");
        for (kind, interval) in &a {
            let (low, high) = interval.expect("three occasions estimate everything");
            assert!(low <= high, "{}: ordered interval", kind.label());
            assert!(low >= 0.0);
        }
        // Zero resamples → no intervals.
        for (_, interval) in bootstrap_cis(&history, 0, 1) {
            assert_eq!(interval, None);
        }
    }

    #[test]
    fn calibration_report_ranks_estimators_and_embeds_robustness() {
        let scenarios = vec![ChurnScenario::Baseline, ChurnScenario::flash_crowd()];
        let suites =
            run_replicated_vantage_suite(MeasurementPeriod::P4, 0.003, 23, 3, &scenarios, 3, 2);
        let report = calibration_report(&suites, &[], 50);
        assert_eq!(report.replicates, 3);
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.base_seed, 23);
        for cell in &report.cells {
            assert_eq!(cell.vantages, 3);
            assert_eq!(cell.single_vantage.len(), 3);
            assert_eq!(cell.estimators.len(), 4);
            assert_eq!(cell.leaderboard.len(), 4);
            // The leaderboard is sorted by absolute bias.
            let bias = |label: &str| {
                cell.estimators
                    .iter()
                    .find(|e| e.estimator == label)
                    .map(|e| e.signed_bias.abs())
                    .unwrap()
            };
            for pair in cell.leaderboard.windows(2) {
                assert!(bias(&pair[0]) <= bias(&pair[1]));
            }
            for estimator in &cell.estimators {
                assert_eq!(estimator.replicates_with_estimate, 3);
                assert!(estimator.mean_estimate > 0.0);
                assert!((0.0..=1.0).contains(&estimator.coverage_self_analytic));
                assert!(estimator.coverage_self_bootstrap.is_some());
                assert!(estimator.mean_rel_width_analytic > 0.0);
            }
        }
        // Deterministic JSON.
        let again = calibration_report(&suites, &[], 50);
        assert_eq!(report.to_json_string(), again.to_json_string());
        assert!(report.cell("baseline").is_some());
        assert!(report.cell("nope").is_none());
        let table = report.summary_table();
        assert!(table.contains("chao1"));
        assert!(table.contains("Rank"));
    }

    #[test]
    fn single_vantage_cells_rank_the_section_v_estimators() {
        let scenarios = vec![ChurnScenario::Baseline];
        let suites =
            run_replicated_vantage_suite(MeasurementPeriod::P1, 0.003, 5, 1, &scenarios, 2, 2);
        let report = calibration_report(&suites, &[], 50);
        let cell = &report.cells[0];
        assert_eq!(cell.vantages, 1);
        assert!(cell.estimators.is_empty(), "no capture structure below two vantages");
        assert_eq!(
            {
                let mut sorted = cell.leaderboard.clone();
                sorted.sort();
                sorted
            },
            vec!["by_ip_groups", "by_pids", "core_lower_bound"]
        );
        assert_eq!(cell.single_vantage.len(), 2);
        // Replicate 0 runs the base seed itself.
        assert_eq!(cell.single_vantage[0].seed, 5);
        // Window histories have capture structure even below two vantages.
        assert_eq!(cell.window_estimators.len(), WINDOW_ESTIMATORS.len());
        for estimator in &cell.window_estimators {
            assert_eq!(estimator.replicates_with_estimate, 2);
            assert!(estimator.coverage_self_bootstrap.is_some());
            assert_ne!(estimator.estimator, "lincoln_petersen");
        }
    }

    #[test]
    fn window_histories_slice_connections_into_occasions() {
        use measurement::{ConnectionRecord, MeasurementDataset};
        use p2pmodel::{ConnectionId, Direction, IpAddress, Multiaddr, Transport};
        use simclock::{SimDuration, SimTime};

        let mut dataset = MeasurementDataset::new(
            "go-ipfs",
            true,
            SimTime::ZERO,
            SimTime::ZERO + SimDuration::from_hours(48),
        );
        let conn = |id: u64, peer: u64, open_h: u64, close_h: u64| ConnectionRecord {
            id: ConnectionId(id),
            peer: PeerId::derived(peer),
            direction: Direction::Inbound,
            remote_addr: Multiaddr::new(IpAddress::V4(peer as u32), Transport::Tcp, 4001),
            opened_at: SimTime::ZERO + SimDuration::from_hours(open_h),
            closed_at: SimTime::ZERO + SimDuration::from_hours(close_h),
            open_at_end: false,
            close_reason: None,
        };
        // Peer 1: hours 0–5 of a 24 h span sliced into 12 windows of 2 h
        // → windows 0, 1, 2. Peer 2: hours 13–15 → windows 6, 7. Peer 3
        // opens after the span → ignored. Peer 4: two sessions, windows 0
        // and 11 (the close clamps to the span edge).
        dataset.connections.push(conn(1, 1, 0, 5));
        dataset.connections.push(conn(2, 2, 13, 15));
        dataset.connections.push(conn(3, 3, 30, 31));
        dataset.connections.push(conn(4, 4, 1, 2));
        dataset.connections.push(conn(5, 4, 23, 40));

        let history =
            CaptureHistory::from_time_windows(&dataset, 12, SimDuration::from_hours(24));
        assert_eq!(history.occasions, 12);
        assert_eq!(history.observed(), 3, "the late peer is outside the span");
        let mut masks = history.masks.clone();
        masks.sort_unstable();
        // Peer 1 → windows {0,1,2}; peer 2 → {6,7}; peer 4 → {0,11}.
        assert_eq!(masks, vec![0b0000_0000_0111, 0b0000_1100_0000, 0b1000_0000_0011]);
        // f1 counts single-window peers; peer 1 (3 windows), peer 2 (2),
        // peer 4 (3) → none.
        assert_eq!(history.f1_f2(), (0, 1));

        // The span clamps to the measurement duration.
        let clamped =
            CaptureHistory::from_time_windows(&dataset, 12, SimDuration::from_hours(999));
        assert_eq!(clamped.observed(), 4, "full-span slicing sees the late peer too");
    }

    #[test]
    fn window_bootstrap_seeds_never_alias_the_vantage_stream() {
        assert_ne!(window_bootstrap_seed(7, "baseline"), bootstrap_seed(7, "baseline"));
        assert_ne!(window_bootstrap_seed(7, "baseline"), window_bootstrap_seed(8, "baseline"));
        assert_ne!(
            window_bootstrap_seed(7, "baseline"),
            window_bootstrap_seed(7, "flashcrowd")
        );
    }
}
