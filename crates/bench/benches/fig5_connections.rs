//! Fig. 5: simultaneous-connection time series for each measurement period.

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use population::MeasurementPeriod;
use simclock::SimDuration;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    for period in [MeasurementPeriod::P0, MeasurementPeriod::P2, MeasurementPeriod::P3] {
        let campaign = bench_campaign(period);
        let dataset = campaign.primary().clone();
        c.bench_function(&format!("fig5/connection_timeline/{period}"), |b| {
            b.iter(|| analysis::connection_timeline(black_box(&dataset), SimDuration::from_hours(24)))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig5
}
criterion_main!(benches);
