//! Fig. 6: PID growth and long-disconnected PIDs. The 14-day extension run is
//! simulated once (outside the measured closure); the bench measures the
//! analysis pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use measurement::run_period;
use population::MeasurementPeriod;
use simclock::SimDuration;
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    // A very small scale keeps the 14-day simulation affordable inside a bench.
    let campaign = run_period(MeasurementPeriod::Extended, 0.002, 0xF16);
    let dataset = campaign.primary();
    c.bench_function("fig6/pid_growth", |b| {
        b.iter(|| {
            analysis::pid_growth(
                black_box(dataset),
                SimDuration::from_hours(1),
                SimDuration::from_days(3),
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig6
}
criterion_main!(benches);
