//! Campaign sweep subsystem: grid enumeration, a small end-to-end parallel
//! sweep, and the report-aggregation stage in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use measurement::sweep::{CellReport, SweepGrid, SweepReport, SweepRunner};
use population::MeasurementPeriod;
use std::hint::black_box;

fn small_grid() -> SweepGrid {
    SweepGrid::new(vec![MeasurementPeriod::P1])
        .with_scales(vec![0.003])
        .with_seed_count(4)
}

fn bench_sweep(c: &mut Criterion) {
    c.bench_function("sweep/grid_cells_1k", |b| {
        let grid = SweepGrid::new(vec![
            MeasurementPeriod::P0,
            MeasurementPeriod::P1,
            MeasurementPeriod::P2,
            MeasurementPeriod::P3,
            MeasurementPeriod::P4,
        ])
        .with_scales(vec![0.005, 0.01, 0.02, 0.05])
        .with_seed_count(50);
        b.iter(|| black_box(grid.cells().len()))
    });

    c.bench_function("sweep/run_p1_4seeds", |b| {
        let grid = small_grid();
        b.iter(|| black_box(SweepRunner::new().run(&grid).cells.len()))
    });

    c.bench_function("sweep/aggregate_and_json", |b| {
        let report = SweepRunner::new().run(&small_grid());
        let cells: Vec<CellReport> = report.cells.clone();
        b.iter(|| {
            let report = SweepReport::from_cells(black_box(cells.clone()));
            black_box(report.to_json_string().len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_sweep
}
criterion_main!(benches);
