//! Fig. 4: supported-protocol histogram on the P4 data set.

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use population::MeasurementPeriod;
use std::hint::black_box;

fn bench_fig4(c: &mut Criterion) {
    let campaign = bench_campaign(MeasurementPeriod::P4);
    let dataset = campaign.primary();
    c.bench_function("fig4/protocol_histogram", |b| {
        b.iter(|| analysis::protocol_histogram(black_box(dataset), 3))
    });
    c.bench_function("fig4/kad_supporters", |b| {
        b.iter(|| analysis::metadata::kad_supporters(black_box(dataset)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig4
}
criterion_main!(benches);
