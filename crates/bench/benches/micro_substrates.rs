//! Micro-benchmarks of the substrates the measurement pipeline rests on:
//! Kademlia routing tables, the connection manager's trim pass, the end-to-end
//! simulation step rate and the go-ipfs monitor's log ingestion.

use criterion::{criterion_group, criterion_main, Criterion};
use measurement::GoIpfsMonitor;
use netsim::{DhtRole, Network, NetworkConfig, ObserverSpec};
use p2pmodel::{ConnLimits, ConnectionId, ConnectionManager, PeerId, RoutingTable};
use population::PopulationBuilder;
use simclock::{KeyedEventQueue, SimDuration, SimRng, SimTime};
use std::hint::black_box;

fn bench_routing_table(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(1);
    let ids: Vec<PeerId> = (0..5_000).map(|_| PeerId::random(&mut rng)).collect();
    c.bench_function("micro/routing_table_insert_5k", |b| {
        b.iter(|| {
            let mut table = RoutingTable::new(PeerId::derived(0));
            for id in &ids {
                table.insert(*id);
            }
            black_box(table.len())
        })
    });
    let mut table = RoutingTable::new(PeerId::derived(0));
    for id in &ids {
        table.insert(*id);
    }
    c.bench_function("micro/routing_table_closest_20", |b| {
        b.iter(|| black_box(table.closest(&PeerId::derived(42), 20)))
    });
    // The crawler dumps tables with many targets per candidate, so the
    // select-then-sort top-k path is on its hot loop; sweep the target to
    // exercise different bucket shapes.
    c.bench_function("micro/routing_table_closest_20_x100_targets", |b| {
        b.iter(|| {
            let mut total = 0;
            for t in 0..100u64 {
                total += table.closest(&PeerId::derived(t), 20).len();
            }
            black_box(total)
        })
    });
}

fn bench_connmgr(c: &mut Criterion) {
    c.bench_function("micro/connmgr_trim_2000_to_600", |b| {
        b.iter(|| {
            let mut mgr = ConnectionManager::new(
                ConnLimits::new(600, 900).with_grace_period(SimDuration::ZERO),
            );
            for i in 0..2_000u64 {
                mgr.track(ConnectionId(i), PeerId::derived(i), SimTime::ZERO);
            }
            black_box(mgr.maybe_trim(SimTime::from_secs(60)).len())
        })
    });
}

fn bench_mailbox_drain(c: &mut Criterion) {
    // A sealed inter-shard mailbox arrives as an unsorted batch of
    // (at, key, event) entries; the engine drains it into the destination's
    // KeyedEventQueue with one schedule_batch, which sorts the batch once and
    // stages it as a side lane that pop() merges with the heap — instead of
    // paying a heap sift per event both in and out. Compare both paths at the
    // 10k-events/epoch scale a large campaign sees, on a queue pre-loaded
    // with local work, and assert the batched drain wins.
    // Shape matters: mailbox events land in the next epoch — the earliest
    // pending instants — while the resident queue holds session events spread
    // over the remaining hours. Per-event pushes of near-front events sift
    // almost to the heap root, which is exactly the cost the bulk path dodges.
    const EPOCH_EVENTS: usize = 10_000;
    const RESIDENT: u64 = 50_000;
    let mut rng = SimRng::seed_from(0xd8a1);
    let mailbox: Vec<(SimTime, u64, u64)> = (0..EPOCH_EVENTS as u64)
        .map(|i| {
            let at = SimTime::from_millis(rng.uniform_u64(60_000, 120_000));
            (at, rng.uniform_u64(0, 1 << 20), i)
        })
        .collect();
    let preloaded = || {
        let mut queue = KeyedEventQueue::new();
        let mut seed = SimRng::seed_from(0x0e51);
        for i in 0..RESIDENT {
            let at = SimTime::from_millis(seed.uniform_u64(60_000, 7_200_000));
            queue.schedule(at, i % (1 << 20), u64::MAX - i);
        }
        queue
    };

    // Both paths then process the next epoch like the engine does, because
    // the drain strategy also sets the *pop* cost: lane pops are O(1) where
    // heap pops sift the root down the full depth.
    let epoch_end = SimTime::from_millis(120_000);
    let naive_drain = || {
        let mut queue = preloaded();
        for &(at, key, event) in &mailbox {
            queue.schedule(at, key, event);
        }
        let mut popped = 0usize;
        while queue.pop_before(epoch_end).is_some() {
            popped += 1;
        }
        black_box((queue.len(), popped))
    };
    let batched_drain = || {
        let mut queue = preloaded();
        let mut sealed = mailbox.clone();
        sealed.sort_by_key(|&(at, key, _)| (at, key));
        queue.schedule_batch(sealed);
        let mut popped = 0usize;
        while queue.pop_before(epoch_end).is_some() {
            popped += 1;
        }
        black_box((queue.len(), popped))
    };

    c.bench_function("micro/mailbox_drain_naive_schedule_10k", |b| b.iter(naive_drain));
    c.bench_function("micro/mailbox_drain_batched_10k", |b| b.iter(batched_drain));

    // Not a statistical benchmark, but a regression tripwire: the batched
    // drain (including the seal-time sort) must beat per-event scheduling at
    // this volume, or the mailbox exchange has lost its reason to exist.
    let timed = |f: &dyn Fn() -> (usize, usize)| {
        let start = std::time::Instant::now();
        for _ in 0..20 {
            black_box(f());
        }
        start.elapsed()
    };
    let naive = timed(&naive_drain);
    let batched = timed(&batched_drain);
    assert!(
        batched < naive,
        "batched mailbox drain ({batched:?}) must beat naive per-event schedule ({naive:?}) at {EPOCH_EVENTS} events/epoch"
    );
}

fn bench_observation_sort(c: &mut Criterion) {
    use netsim::{ObservationKind, ObservationTable};

    // A shuffled table of the size one observer log reaches in a large
    // campaign: the archive write path sorts this before encoding.
    const ROWS: usize = 200_000;
    let shuffled = || {
        let mut rng = SimRng::seed_from(0xab5e);
        let mut at = Vec::with_capacity(ROWS);
        let mut kind = Vec::with_capacity(ROWS);
        let mut peer_slot = Vec::with_capacity(ROWS);
        let mut conn = Vec::with_capacity(ROWS);
        let mut payload = Vec::with_capacity(ROWS);
        for i in 0..ROWS {
            at.push(SimTime::from_millis(rng.uniform_u64(0, 1 << 32)));
            kind.push(match i % 4 {
                0 => ObservationKind::OpenedInbound,
                1 => ObservationKind::Closed,
                2 => ObservationKind::Identify,
                _ => ObservationKind::Discovered,
            });
            peer_slot.push((i % 50_000) as u32);
            conn.push(i as u64);
            payload.push(i as u32);
        }
        ObservationTable::from_columns(at, kind, peer_slot, conn, payload)
    };

    c.bench_function("micro/observation_sort_in_place_200k", |b| {
        b.iter(|| {
            let mut table = shuffled();
            table.stable_sort_by_time();
            black_box(table.checksum())
        })
    });

    // Regression tripwire, not a statistical benchmark: the in-place cycle
    // walk must leave every column in its original allocation and must not
    // grow the table's resident footprint — the previous implementation
    // collected five fresh column vectors and doubled peak memory on the
    // archive write path.
    let mut table = shuffled();
    let before_bytes = table.approx_bytes();
    let before_ptrs = (
        table.ats().as_ptr(),
        table.kinds().as_ptr(),
        table.peer_slots().as_ptr(),
        table.conns().as_ptr(),
        table.payloads().as_ptr(),
    );
    table.stable_sort_by_time();
    assert!(
        table.is_sorted_by_time(),
        "stable_sort_by_time must leave the table time-ordered"
    );
    assert_eq!(
        before_ptrs,
        (
            table.ats().as_ptr(),
            table.kinds().as_ptr(),
            table.peer_slots().as_ptr(),
            table.conns().as_ptr(),
            table.payloads().as_ptr(),
        ),
        "stable_sort_by_time must permute in place, not reallocate columns"
    );
    assert_eq!(
        before_bytes,
        table.approx_bytes(),
        "stable_sort_by_time must not grow the table's resident footprint"
    );
}

fn bench_simulation(c: &mut Criterion) {
    let population = PopulationBuilder::new(3)
        .with_scale(0.003)
        .with_duration(SimDuration::from_hours(6))
        .build();
    c.bench_function("micro/simulate_6h_small_network", |b| {
        b.iter(|| {
            let observer = ObserverSpec::new(
                "go-ipfs",
                PeerId::derived(999_999),
                DhtRole::Server,
                ConnLimits::new(50, 80),
            );
            let config = NetworkConfig::single_observer(7, SimDuration::from_hours(6), observer);
            let output = Network::new(config, population.specs.clone()).run();
            black_box(output.logs[0].len())
        })
    });

    let observer = ObserverSpec::new(
        "go-ipfs",
        PeerId::derived(999_999),
        DhtRole::Server,
        ConnLimits::new(50, 80),
    );
    let config = NetworkConfig::single_observer(7, SimDuration::from_hours(6), observer);
    let output = Network::new(config, population.specs.clone()).run();
    c.bench_function("micro/goipfs_monitor_ingest", |b| {
        b.iter(|| black_box(GoIpfsMonitor::new().ingest(&output.logs[0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routing_table, bench_connmgr, bench_mailbox_drain, bench_observation_sort, bench_simulation
}
criterion_main!(benches);
