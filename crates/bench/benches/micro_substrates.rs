//! Micro-benchmarks of the substrates the measurement pipeline rests on:
//! Kademlia routing tables, the connection manager's trim pass, the end-to-end
//! simulation step rate and the go-ipfs monitor's log ingestion.

use criterion::{criterion_group, criterion_main, Criterion};
use measurement::GoIpfsMonitor;
use netsim::{DhtRole, Network, NetworkConfig, ObserverSpec};
use p2pmodel::{ConnLimits, ConnectionId, ConnectionManager, PeerId, RoutingTable};
use population::PopulationBuilder;
use simclock::{SimDuration, SimRng, SimTime};
use std::hint::black_box;

fn bench_routing_table(c: &mut Criterion) {
    let mut rng = SimRng::seed_from(1);
    let ids: Vec<PeerId> = (0..5_000).map(|_| PeerId::random(&mut rng)).collect();
    c.bench_function("micro/routing_table_insert_5k", |b| {
        b.iter(|| {
            let mut table = RoutingTable::new(PeerId::derived(0));
            for id in &ids {
                table.insert(*id);
            }
            black_box(table.len())
        })
    });
    let mut table = RoutingTable::new(PeerId::derived(0));
    for id in &ids {
        table.insert(*id);
    }
    c.bench_function("micro/routing_table_closest_20", |b| {
        b.iter(|| black_box(table.closest(&PeerId::derived(42), 20)))
    });
    // The crawler dumps tables with many targets per candidate, so the
    // select-then-sort top-k path is on its hot loop; sweep the target to
    // exercise different bucket shapes.
    c.bench_function("micro/routing_table_closest_20_x100_targets", |b| {
        b.iter(|| {
            let mut total = 0;
            for t in 0..100u64 {
                total += table.closest(&PeerId::derived(t), 20).len();
            }
            black_box(total)
        })
    });
}

fn bench_connmgr(c: &mut Criterion) {
    c.bench_function("micro/connmgr_trim_2000_to_600", |b| {
        b.iter(|| {
            let mut mgr = ConnectionManager::new(
                ConnLimits::new(600, 900).with_grace_period(SimDuration::ZERO),
            );
            for i in 0..2_000u64 {
                mgr.track(ConnectionId(i), PeerId::derived(i), SimTime::ZERO);
            }
            black_box(mgr.maybe_trim(SimTime::from_secs(60)).len())
        })
    });
}

fn bench_simulation(c: &mut Criterion) {
    let population = PopulationBuilder::new(3)
        .with_scale(0.003)
        .with_duration(SimDuration::from_hours(6))
        .build();
    c.bench_function("micro/simulate_6h_small_network", |b| {
        b.iter(|| {
            let observer = ObserverSpec::new(
                "go-ipfs",
                PeerId::derived(999_999),
                DhtRole::Server,
                ConnLimits::new(50, 80),
            );
            let config = NetworkConfig::single_observer(7, SimDuration::from_hours(6), observer);
            let output = Network::new(config, population.specs.clone()).run();
            black_box(output.logs[0].len())
        })
    });

    let observer = ObserverSpec::new(
        "go-ipfs",
        PeerId::derived(999_999),
        DhtRole::Server,
        ConnLimits::new(50, 80),
    );
    let config = NetworkConfig::single_observer(7, SimDuration::from_hours(6), observer);
    let output = Network::new(config, population.specs.clone()).run();
    c.bench_function("micro/goipfs_monitor_ingest", |b| {
        b.iter(|| black_box(GoIpfsMonitor::new().ingest(&output.logs[0])))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_routing_table, bench_connmgr, bench_simulation
}
criterion_main!(benches);
