//! Table II: connection statistics pipeline (sum / avg / median for "All" and
//! "Peer") on the P0 campaign.

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use population::MeasurementPeriod;
use std::hint::black_box;

fn bench_table2(c: &mut Criterion) {
    let campaign = bench_campaign(MeasurementPeriod::P0);
    let dataset = campaign.primary();
    c.bench_function("table2/connection_stats", |b| {
        b.iter(|| analysis::connection_stats(black_box(dataset)))
    });
    c.bench_function("table2/direction_stats", |b| {
        b.iter(|| analysis::direction_stats(black_box(dataset)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table2
}
criterion_main!(benches);
