//! Fig. 7: per-PID duration and connection-count CDFs on the P4 data set.

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use population::MeasurementPeriod;
use std::hint::black_box;

fn bench_fig7(c: &mut Criterion) {
    let campaign = bench_campaign(MeasurementPeriod::P4);
    let dataset = campaign.primary();
    c.bench_function("fig7/max_duration_cdf", |b| {
        b.iter(|| analysis::max_duration_cdf(black_box(dataset), 30.0))
    });
    c.bench_function("fig7/connection_count_cdf", |b| {
        b.iter(|| analysis::connection_count_cdf(black_box(dataset)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig7
}
criterion_main!(benches);
