//! Table IV and Section V: peer classification, IP grouping and the combined
//! network-size estimate on the P4 data set.

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use population::MeasurementPeriod;
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    let campaign = bench_campaign(MeasurementPeriod::P4);
    let dataset = campaign.primary();
    c.bench_function("table4/classify_peers", |b| {
        b.iter(|| analysis::classify_peers(black_box(dataset)))
    });
    c.bench_function("table4/ip_grouping", |b| {
        b.iter(|| analysis::ip_grouping(black_box(dataset)))
    });
    c.bench_function("table4/network_size_estimate", |b| {
        b.iter(|| analysis::network_size_estimate(black_box(dataset)))
    });
    c.bench_function("table4/fingerprint_groups", |b| {
        b.iter(|| analysis::fingerprint_groups(black_box(dataset)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table4
}
criterion_main!(benches);
