//! Fig. 2: passive vs. crawler horizon comparison on the P1 campaign
//! (go-ipfs plus two hydra heads plus the crawler baseline).

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use measurement::ActiveCrawler;
use netsim::dht_log_from_ground_truth;
use p2pmodel::PeerId;
use population::MeasurementPeriod;
use simclock::SimTime;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let campaign = bench_campaign(MeasurementPeriod::P1);
    c.bench_function("fig2/horizon_comparison", |b| {
        b.iter(|| analysis::horizon_comparison(black_box(&campaign)))
    });
    let end = SimTime::ZERO + campaign.scenario.period.duration();
    // The campaign type keeps only the crawl results, so rebuild the routing
    // tables from ground truth to benchmark the crawl itself.
    let dht = dht_log_from_ground_truth(&campaign.ground_truth, &[PeerId::derived(u64::MAX - 1)]);
    c.bench_function("fig2/crawl_8h", |b| {
        b.iter(|| {
            ActiveCrawler::new().crawl(
                black_box(&dht),
                black_box(&campaign.ground_truth),
                SimTime::ZERO,
                end,
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2
}
criterion_main!(benches);
