//! Benchmarks of the streaming single-pass analysis engine: the teed
//! engine+stream run, the post-hoc log replay, and the cumulative-estimate
//! finalisation — the layers `repro stream` composes — plus the reduced
//! long-horizon memory campaign behind `BENCH_stream.json`.

use bench::stream::{run_stream_bench, smoke_config};
use criterion::{criterion_group, criterion_main, Criterion};
use measurement::stream::StreamConfig;
use measurement::{run_streaming_campaign, DurationMode, StreamingMonitor};
use population::{MeasurementPeriod, Scenario};
use simclock::SimDuration;
use std::hint::black_box;

const WINDOW: SimDuration = SimDuration::from_hours(6);

fn bench_teed_campaign(c: &mut Criterion) {
    c.bench_function("stream/teed_campaign_p4_0.003", |b| {
        b.iter(|| {
            let campaign = run_streaming_campaign(
                Scenario::new(MeasurementPeriod::P4).with_scale(0.003).with_seed(11),
                WINDOW,
            );
            black_box(campaign.primary_stream().connections)
        })
    });
}

fn bench_post_hoc_replay(c: &mut Criterion) {
    let output = Scenario::new(MeasurementPeriod::P4)
        .with_scale(0.003)
        .with_seed(11)
        .build()
        .simulate();
    let log = output.log("go-ipfs").expect("P4 deploys go-ipfs");
    for (label, mode) in [
        ("stream/replay_exact_p4_0.003", DurationMode::Exact),
        ("stream/replay_bucketed_p4_0.003", DurationMode::LogBucketed),
    ] {
        c.bench_function(label, |b| {
            b.iter(|| {
                let config =
                    StreamConfig::for_observer("go-ipfs", log.dht_server, log.duration(), WINDOW)
                        .with_duration_mode(mode);
                let summary = StreamingMonitor::new(config).ingest_log(log);
                black_box(summary.peak_state_bytes)
            })
        });
    }
}

fn bench_stream_estimates(c: &mut Criterion) {
    let campaign = run_streaming_campaign(
        Scenario::new(MeasurementPeriod::P4).with_scale(0.003).with_seed(11),
        WINDOW,
    );
    let stream = campaign.primary_stream();
    c.bench_function("stream/cumulative_estimates_p4_0.003", |b| {
        b.iter(|| black_box(analysis::stream_estimates(stream).netsize.by_pids))
    });
}

fn bench_long_horizon(c: &mut Criterion) {
    let cfg = smoke_config();
    c.bench_function("stream/long_horizon_smoke", |b| {
        b.iter(|| {
            let report = run_stream_bench(&cfg);
            black_box(report.min_exact_ratio())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_teed_campaign, bench_post_hoc_replay, bench_stream_estimates, bench_long_horizon
}
criterion_main!(benches);
