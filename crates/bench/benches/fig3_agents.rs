//! Fig. 3: agent-version histogram on the P4 data set.

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use population::MeasurementPeriod;
use std::hint::black_box;

fn bench_fig3(c: &mut Criterion) {
    let campaign = bench_campaign(MeasurementPeriod::P4);
    let dataset = campaign.primary();
    c.bench_function("fig3/agent_histogram", |b| {
        b.iter(|| analysis::agent_histogram(black_box(dataset), 1))
    });
    c.bench_function("fig3/agent_breakdown", |b| {
        b.iter(|| analysis::metadata::agent_breakdown(black_box(dataset)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fig3
}
criterion_main!(benches);
