//! Benchmarks of the columnar observation pipeline at scale: raw engine
//! throughput into counting sinks, the full sharded scale harness, and the
//! columnar monitor ingest — the three layers `repro scale` composes.

use bench::scale::{run_scale, smoke_config, synthetic_population, ScaleConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use measurement::GoIpfsMonitor;
use netsim::{
    CountingSink, DhtRole, Network, NetworkConfig, ObserverSpec,
};
use p2pmodel::{ConnLimits, PeerId};
use std::hint::black_box;

fn shard_network(cfg: &ScaleConfig) -> Network {
    let population = synthetic_population(cfg, 0);
    let observer = ObserverSpec::new(
        "scale-observer",
        PeerId::derived(u64::MAX - 1),
        DhtRole::Server,
        ConnLimits::new((population.len() / 8).max(64), (population.len() / 4).max(128)),
    );
    let config = NetworkConfig::single_observer(cfg.shard_seed(0), cfg.duration, observer);
    Network::new(config, population).with_dht_tracking(false)
}

fn bench_engine_throughput(c: &mut Criterion) {
    let cfg = ScaleConfig {
        peers: 10_000,
        shards: 1,
        ..smoke_config()
    };
    c.bench_function("scale/engine_counting_sink_10k_peers", |b| {
        b.iter(|| {
            let run = shard_network(&cfg).run_with_sinks(vec![CountingSink::default()]);
            black_box(run.sinks[0].total())
        })
    });
    c.bench_function("scale/engine_columnar_table_10k_peers", |b| {
        b.iter(|| {
            let output = shard_network(&cfg).run();
            black_box(output.logs[0].len())
        })
    });
}

fn bench_scale_harness(c: &mut Criterion) {
    let cfg = smoke_config();
    c.bench_function("scale/harness_4k_peers_4_shards", |b| {
        b.iter(|| {
            let report = run_scale(&cfg);
            black_box(report.total_events)
        })
    });
}

fn bench_columnar_ingest(c: &mut Criterion) {
    let cfg = ScaleConfig {
        peers: 10_000,
        shards: 1,
        ..smoke_config()
    };
    let output = shard_network(&cfg).run();
    c.bench_function("scale/goipfs_ingest_columnar_10k_peers", |b| {
        b.iter(|| black_box(GoIpfsMonitor::new().ingest(&output.logs[0]).pid_count()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engine_throughput, bench_scale_harness, bench_columnar_ingest
}
criterion_main!(benches);
