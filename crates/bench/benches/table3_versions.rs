//! Table III: go-ipfs version-change classification on the P4 data set.

use bench::bench_campaign;
use criterion::{criterion_group, criterion_main, Criterion};
use population::MeasurementPeriod;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let campaign = bench_campaign(MeasurementPeriod::P4);
    let dataset = campaign.primary();
    c.bench_function("table3/version_changes", |b| {
        b.iter(|| analysis::version_changes(black_box(dataset)))
    });
    c.bench_function("table3/role_switches", |b| {
        b.iter(|| analysis::role_switches(black_box(dataset)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_table3
}
criterion_main!(benches);
