//! Load driver and bench harness for the `repro serve` daemon.
//!
//! Three pieces, all deterministic:
//!
//! * **Feeds** — [`campaign_feeds`] turns simulated campaigns into per-
//!   observer feeds (one tenant per scenario × observer), and
//!   [`synthetic_feed`] generates cheap seeded feeds for the N=1000
//!   concurrency bench without running N simulations.
//! * **Driver** — [`drive_feeds`] speaks the serve protocol over any
//!   duplex stream (the CI smoke job points it at the daemon's Unix
//!   socket): hello, resume handshake via `status`, registry delta, event
//!   batches, then `finish` answers. [`reference_answers`] computes the
//!   same answers in-process through the identical code path
//!   (`StreamingMonitor` + `analysis::answer_stream_query`), so the two
//!   outputs must match byte-for-byte.
//! * **Bench** — [`run_serve_bench`] hosts N concurrent tenant feeds
//!   in-process (round-robin batch interleave, exactly what N pipelined
//!   connections serialising on the daemon's state lock execute) and
//!   reports sustained ingest events/sec, query-latency percentiles and
//!   checkpoint costs for `BENCH_serve.json`.

use analysis::{answer_stream_query, serve_answerer};
use jsonio::Json;
use measurement::serve::{
    read_frame, write_frame, Frame, ServeOptions, ServeState, FRAME_EVENTS, FRAME_REGISTRY,
};
use measurement::{StreamConfig, StreamingMonitor};
use netsim::archive::{encode_event_block, encode_registry_delta, fnv1a};
use netsim::{IdentifyRegistry, ObservationSink, ObservationTable};
use p2pmodel::{
    AgentVersion, CloseReason, ConnectionId, Direction, IdentifyInfo, IpAddress, Multiaddr,
    PeerId, ProtocolSet, Transport,
};
use population::{ChurnScenario, MeasurementPeriod, Scenario};
use simclock::{SimDuration, SimTime};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::time::Instant;

/// One tenant feed: everything a client needs to stream a campaign into
/// the daemon and everything the reference path needs to reproduce the
/// answer locally.
pub struct ServeFeed {
    /// Tenant name (`<scenario>/<observer>` for campaign feeds).
    pub tenant: String,
    /// The monitor configuration sent with `hello`.
    pub config: StreamConfig,
    /// The registry resolving the table's dense ids.
    pub registry: IdentifyRegistry,
    /// The chronological event rows of the feed.
    pub table: ObservationTable,
}

/// Builds one feed per scenario × observer by running the campaigns through
/// the simulation engine — the exact observation rows the batch pipeline
/// sees, cut into serve-protocol batches by the driver.
pub fn campaign_feeds(
    period: MeasurementPeriod,
    scale: f64,
    seed: u64,
    window: SimDuration,
    scenarios: &[ChurnScenario],
) -> Vec<ServeFeed> {
    let mut feeds = Vec::new();
    for churn in scenarios {
        let label = churn.label().to_string();
        let run = Scenario::new(period)
            .with_scale(scale)
            .with_seed(seed)
            .with_churn(churn.clone())
            .build();
        let duration = run.config.duration;
        let output = netsim::Network::new(run.config, run.population.specs)
            .with_population_events(run.events)
            .run();
        for log in &output.logs {
            feeds.push(ServeFeed {
                tenant: format!("{label}/{}", log.observer),
                config: StreamConfig::for_observer(
                    &log.observer,
                    log.dht_server,
                    duration,
                    window,
                ),
                registry: log.registry().clone(),
                table: log.table().clone(),
            });
        }
    }
    feeds
}

/// Generates one cheap deterministic feed (seeded LCG): a few dozen peers
/// opening, identifying and closing connections on a jittered cadence —
/// enough state churn to exercise every monitor code path without a
/// simulation per tenant.
pub fn synthetic_feed(index: usize, seed: u64, events: usize) -> ServeFeed {
    let mut state = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(index as u64 + 1);
    let mut next = move || {
        state = state
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        state >> 11
    };
    let peers = 24usize;
    let mut registry = IdentifyRegistry::new();
    let mut addr_ids = Vec::with_capacity(peers);
    for p in 0..peers {
        registry.register_peer(PeerId::derived((index as u64) << 24 | p as u64));
        addr_ids.push(registry.intern_addr(Multiaddr::new(
            IpAddress::V4((index as u32) << 8 | p as u32),
            if p % 2 == 0 { Transport::Tcp } else { Transport::Quic },
            4001,
        )));
    }
    let info_server = registry.intern_identify(&IdentifyInfo::new(
        AgentVersion::parse("go-ipfs/0.11.0/serve-bench"),
        ProtocolSet::go_ipfs_dht_server(),
        vec![],
    ));

    let mut table = ObservationTable::new();
    let mut open: VecDeque<(u64, u32)> = VecDeque::new();
    let mut next_conn = 0u64;
    let mut t_ms = 0u64;
    while table.len() < events {
        t_ms += 1_000 + next() % 29_000;
        let at = SimTime::from_millis(t_ms);
        let roll = next() % 10;
        if roll < 4 || open.is_empty() {
            let slot = (next() % peers as u64) as u32;
            let direction = if next() % 2 == 0 {
                Direction::Inbound
            } else {
                Direction::Outbound
            };
            table.connection_opened(
                at,
                ConnectionId(next_conn),
                slot,
                direction,
                addr_ids[slot as usize],
            );
            open.push_back((next_conn, slot));
            next_conn += 1;
        } else if roll < 7 {
            let (conn, slot) = open.pop_front().expect("open queue checked non-empty");
            table.connection_closed(at, ConnectionId(conn), slot, CloseReason::PeerLeft);
        } else if roll < 9 {
            let &(_, slot) = open.front().expect("open queue checked non-empty");
            table.identify_received(at, slot, info_server);
        } else {
            let slot = (next() % peers as u64) as u32;
            table.peer_discovered(at, slot, addr_ids[slot as usize]);
        }
    }
    let ended = SimTime::from_millis(t_ms + 60_000);
    ServeFeed {
        tenant: format!("synth-{index}"),
        config: StreamConfig::go_ipfs(
            format!("synth-{index}"),
            true,
            SimTime::ZERO,
            ended,
            SimDuration::from_mins(15),
        ),
        registry,
        table,
    }
}

/// Options for one [`drive_feeds`] pass.
pub struct DriveOptions {
    /// Rows per event batch.
    pub batch_rows: usize,
    /// Tolerate existing tenants and skip already-ingested events (the
    /// post-crash resume handshake via `status`).
    pub resume: bool,
    /// Send at most this many event batches per tenant and stop (no
    /// `finish`, no answers) — the CI kill-mid-ingest leg.
    pub max_batches: Option<usize>,
    /// Send a `shutdown` op after driving every feed.
    pub shutdown: bool,
}

fn drive_err(message: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message.into())
}

fn roundtrip<S: Read + Write>(stream: &mut S, doc: &Json) -> io::Result<Json> {
    write_frame(stream, &Frame::control(doc))?;
    stream.flush()?;
    let reply = read_frame(stream)?
        .ok_or_else(|| drive_err("daemon closed the connection mid-conversation"))?;
    reply.control_json().map_err(drive_err)
}

fn expect_ok(reply: &Json) -> io::Result<()> {
    if reply.bool_field("ok").map_err(|e| drive_err(e.to_string()))? {
        Ok(())
    } else {
        Err(drive_err(
            reply.str_field("error").unwrap_or("unlabelled daemon error"),
        ))
    }
}

/// Streams every feed into the daemon over `stream` and returns the
/// deterministic answers document (`{"tenants": [{tenant, answer}...]}`),
/// or an empty-answer document when `max_batches` cut ingest short.
pub fn drive_feeds<S: Read + Write>(
    stream: &mut S,
    feeds: &[ServeFeed],
    options: &DriveOptions,
) -> io::Result<Json> {
    let mut answers = Json::array();
    for feed in feeds {
        let mut hello = Json::object();
        hello.insert("op", "hello");
        hello.insert("tenant", feed.tenant.as_str());
        hello.insert("config", measurement::serve::config_to_json(&feed.config));
        let reply = roundtrip(stream, &hello)?;
        let fresh = reply.bool_field("ok").map_err(|e| drive_err(e.to_string()))?;
        if !fresh && !options.resume {
            return Err(drive_err(
                reply.str_field("error").unwrap_or("hello rejected"),
            ));
        }

        let mut status = Json::object();
        status.insert("op", "status");
        status.insert("tenant", feed.tenant.as_str());
        let status = roundtrip(stream, &status)?;
        expect_ok(&status)?;
        let skip = |key: &str| -> io::Result<usize> {
            usize::try_from(status.u64_field(key).map_err(|e| drive_err(e.to_string()))?)
                .map_err(|_| drive_err("status cursor out of range"))
        };
        let (events_done, peers, addrs, infos) = if fresh {
            (0, 0, 0, 0)
        } else {
            (skip("events")?, skip("peers")?, skip("addrs")?, skip("infos")?)
        };

        let delta = encode_registry_delta(&feed.registry, peers, addrs, infos);
        write_frame(
            stream,
            &Frame::tenant_block(FRAME_REGISTRY, &feed.tenant, &delta),
        )?;
        let mut sent = 0usize;
        let mut from = events_done.min(feed.table.len());
        while from < feed.table.len() {
            if options.max_batches.is_some_and(|max| sent >= max) {
                break;
            }
            let to = (from + options.batch_rows).min(feed.table.len());
            write_frame(
                stream,
                &Frame::tenant_block(
                    FRAME_EVENTS,
                    &feed.tenant,
                    &encode_event_block(&feed.table, from, to),
                ),
            )?;
            from = to;
            sent += 1;
        }
        stream.flush()?;
        if options.max_batches.is_some() {
            continue;
        }

        let mut finish = Json::object();
        finish.insert("op", "finish");
        finish.insert("tenant", feed.tenant.as_str());
        let reply = roundtrip(stream, &finish)?;
        expect_ok(&reply)?;
        let mut row = Json::object();
        row.insert("tenant", feed.tenant.as_str());
        row.insert(
            "answer",
            reply.field("answer").map_err(|e| drive_err(e.to_string()))?.clone(),
        );
        answers.push(row);
    }
    if options.shutdown {
        let mut doc = Json::object();
        doc.insert("op", "shutdown");
        expect_ok(&roundtrip(stream, &doc)?)?;
    }
    let mut out = Json::object();
    out.insert("tenants", answers);
    Ok(out)
}

/// Computes the answers [`drive_feeds`] would get, entirely in-process:
/// ingest every feed into a fresh monitor, finalise, and answer the same
/// default `summary` query through the same `analysis` code — the
/// byte-identity oracle for the daemon path.
pub fn reference_answers(feeds: &[ServeFeed]) -> Json {
    let query = {
        let mut q = Json::object();
        q.insert("kind", "summary");
        q
    };
    let mut answers = Json::array();
    for feed in feeds {
        let mut monitor = StreamingMonitor::new(feed.config.clone());
        monitor.ingest_table(&feed.table);
        let summary = monitor.finish(&feed.registry);
        let answer = answer_stream_query(&summary, &query)
            .expect("reference summary query cannot fail");
        let mut row = Json::object();
        row.insert("tenant", feed.tenant.as_str());
        row.insert("answer", answer);
        answers.push(row);
    }
    let mut out = Json::object();
    out.insert("tenants", answers);
    out
}

/// Configuration of the in-process concurrency bench.
pub struct ServeBenchConfig {
    /// Concurrent tenant feeds.
    pub tenants: usize,
    /// Events per tenant feed.
    pub events_per_tenant: usize,
    /// Rows per event batch.
    pub batch_rows: usize,
    /// Live queries to time (round-robin over tenants).
    pub queries: usize,
    /// Base seed of the synthetic feeds.
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        ServeBenchConfig {
            tenants: 1000,
            events_per_tenant: 240,
            batch_rows: 48,
            queries: 1000,
            seed: 2022,
        }
    }
}

/// Results of one [`run_serve_bench`] pass.
pub struct ServeBenchReport {
    /// Concurrent tenant feeds hosted.
    pub tenants: usize,
    /// Total events ingested.
    pub total_events: u64,
    /// Wall-clock seconds of the interleaved ingest phase.
    pub ingest_secs: f64,
    /// Sustained ingest rate over the interleaved phase.
    pub events_per_sec: f64,
    /// Timed live queries.
    pub queries: usize,
    /// Median query latency (microseconds).
    pub query_p50_us: f64,
    /// 99th-percentile query latency (microseconds).
    pub query_p99_us: f64,
    /// Worst observed query latency (microseconds).
    pub query_max_us: f64,
    /// Size of a full checkpoint of all tenants (bytes).
    pub checkpoint_bytes: u64,
    /// Seconds to serialise that checkpoint.
    pub checkpoint_secs: f64,
    /// Seconds to restore the daemon state from it.
    pub restore_secs: f64,
    /// FNV-1a checksum over every query answer (determinism witness).
    pub answers_fnv: u64,
}

impl ServeBenchReport {
    /// One-line summary for stderr.
    pub fn summary(&self) -> String {
        format!(
            "serve bench: {} tenants, {} events at {:.0} events/s; \
             query p50 {:.0} us, p99 {:.0} us; checkpoint {} B in {:.3} s, restore {:.3} s",
            self.tenants,
            self.total_events,
            self.events_per_sec,
            self.query_p50_us,
            self.query_p99_us,
            self.checkpoint_bytes,
            self.checkpoint_secs,
            self.restore_secs
        )
    }

    /// The deterministic fields only — safe for byte-compared stdout.
    pub fn deterministic_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("tenants", self.tenants);
        obj.insert("total_events", self.total_events);
        obj.insert("queries", self.queries);
        obj.insert("checkpoint_bytes", self.checkpoint_bytes);
        obj.insert("answers_fnv", self.answers_fnv);
        obj
    }

    /// The full report including timing, for `BENCH_serve.json`.
    pub fn full_json(&self) -> Json {
        let mut obj = self.deterministic_json();
        obj.insert("ingest_secs", self.ingest_secs);
        obj.insert("events_per_sec", self.events_per_sec);
        obj.insert("query_p50_us", self.query_p50_us);
        obj.insert("query_p99_us", self.query_p99_us);
        obj.insert("query_max_us", self.query_max_us);
        obj.insert("checkpoint_secs", self.checkpoint_secs);
        obj.insert("restore_secs", self.restore_secs);
        obj
    }
}

fn percentile(sorted_us: &[f64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    let rank = ((sorted_us.len() - 1) as f64 * q).round() as usize;
    sorted_us[rank.min(sorted_us.len() - 1)]
}

/// Runs the concurrency bench: N synthetic tenant feeds interleaved
/// batch-by-batch through one [`ServeState`] (the serialisation a daemon
/// with N pipelined connections performs), then a timed query storm, then
/// checkpoint + restore.
pub fn run_serve_bench(
    cfg: &ServeBenchConfig,
    mut progress: impl FnMut(usize, usize),
) -> ServeBenchReport {
    let feeds: Vec<ServeFeed> = (0..cfg.tenants)
        .map(|i| synthetic_feed(i, cfg.seed, cfg.events_per_tenant))
        .collect();
    let mut state = ServeState::new(serve_answerer(), ServeOptions::default());
    for feed in &feeds {
        let mut hello = Json::object();
        hello.insert("op", "hello");
        hello.insert("tenant", feed.tenant.as_str());
        hello.insert("config", measurement::serve::config_to_json(&feed.config));
        let reply = state
            .handle_frame(&Frame::control(&hello))
            .expect("control frames are answered");
        assert!(
            reply
                .control_json()
                .expect("daemon reply parses")
                .bool_field("ok")
                .unwrap_or(false),
            "hello rejected for {}",
            feed.tenant
        );
        state.handle_frame(&Frame::tenant_block(
            FRAME_REGISTRY,
            &feed.tenant,
            &encode_registry_delta(&feed.registry, 0, 0, 0),
        ));
    }

    // Interleaved ingest: round-robin one batch per tenant per round, so
    // all N feeds stay concurrently live for the whole phase.
    let batches: Vec<Vec<Frame>> = feeds
        .iter()
        .map(|feed| {
            let mut frames = Vec::new();
            let mut from = 0;
            while from < feed.table.len() {
                let to = (from + cfg.batch_rows).min(feed.table.len());
                frames.push(Frame::tenant_block(
                    FRAME_EVENTS,
                    &feed.tenant,
                    &encode_event_block(&feed.table, from, to),
                ));
                from = to;
            }
            frames
        })
        .collect();
    let rounds = batches.iter().map(Vec::len).max().unwrap_or(0);
    let ingest_started = Instant::now();
    for round in 0..rounds {
        for frames in &batches {
            if let Some(frame) = frames.get(round) {
                state.handle_frame(frame);
            }
        }
        progress(round + 1, rounds);
    }
    let ingest_secs = ingest_started.elapsed().as_secs_f64();
    let total_events = state.events_ingested();

    // Query storm: network-size answers round-robin over the live tenants.
    let mut latencies_us = Vec::with_capacity(cfg.queries);
    let mut answers_fnv = 0xcbf2_9ce4_8422_2325u64;
    for q in 0..cfg.queries {
        let feed = &feeds[q % feeds.len()];
        let mut query = Json::object();
        query.insert("op", "query");
        query.insert("tenant", feed.tenant.as_str());
        let mut body = Json::object();
        body.insert("kind", "network_size");
        query.insert("query", body);
        let frame = Frame::control(&query);
        let started = Instant::now();
        let reply = state.handle_frame(&frame).expect("queries are answered");
        latencies_us.push(started.elapsed().as_secs_f64() * 1e6);
        let doc = reply.control_json().expect("daemon reply parses");
        assert!(
            doc.bool_field("ok").unwrap_or(false),
            "query failed: {doc:?}"
        );
        answers_fnv = answers_fnv.rotate_left(17) ^ fnv1a(doc.to_string_compact().as_bytes());
    }
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

    let checkpoint_started = Instant::now();
    let checkpoint = state.checkpoint_bytes();
    let checkpoint_secs = checkpoint_started.elapsed().as_secs_f64();
    let restore_started = Instant::now();
    let restored = ServeState::restore(&checkpoint, serve_answerer(), ServeOptions::default())
        .expect("own checkpoint restores");
    let restore_secs = restore_started.elapsed().as_secs_f64();
    assert_eq!(restored.events_ingested(), total_events);

    ServeBenchReport {
        tenants: cfg.tenants,
        total_events,
        ingest_secs,
        events_per_sec: if ingest_secs > 0.0 {
            total_events as f64 / ingest_secs
        } else {
            0.0
        },
        queries: latencies_us.len(),
        query_p50_us: percentile(&latencies_us, 0.50),
        query_p99_us: percentile(&latencies_us, 0.99),
        query_max_us: percentile(&latencies_us, 1.0),
        checkpoint_bytes: checkpoint.len() as u64,
        checkpoint_secs,
        restore_secs,
        answers_fnv,
    }
}
