//! Shared fixtures for the benchmark / reproduction harness.
//!
//! Every Criterion bench regenerates one table or figure of the paper; the
//! expensive part — running the measurement campaign — is shared through
//! [`bench_campaign`], which memoises one small-scale campaign per
//! measurement period for the lifetime of the bench process.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimators;
pub mod scale;
pub mod serve;
pub mod stream;

use measurement::{run_period, MeasurementCampaign};
use population::MeasurementPeriod;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

/// The population scale used by the benches (kept small so `cargo bench`
/// finishes in minutes; the `repro` binary accepts larger scales).
pub const BENCH_SCALE: f64 = 0.01;

/// The seed used by the benches.
pub const BENCH_SEED: u64 = 0xbe_c4;

/// Returns (and memoises) the benchmark campaign for a measurement period.
pub fn bench_campaign(period: MeasurementPeriod) -> MeasurementCampaign {
    static CACHE: OnceLock<Mutex<HashMap<&'static str, MeasurementCampaign>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().expect("bench cache lock");
    cache
        .entry(period.label())
        .or_insert_with(|| run_period(period, BENCH_SCALE, BENCH_SEED))
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_memoised_per_period() {
        let a = bench_campaign(MeasurementPeriod::P3);
        let b = bench_campaign(MeasurementPeriod::P3);
        assert_eq!(a.primary().pid_count(), b.primary().pid_count());
    }
}
