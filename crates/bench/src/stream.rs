//! The long-horizon streaming memory bench behind `repro stream
//! --long-horizon` and `benches/stream.rs`.
//!
//! The paper's headline artefacts are time series over a multi-week
//! measurement window, but the batch pipeline's memory grows with campaign
//! *duration*: every connection ever observed stays resident as a
//! ~100-byte record until the estimators run. The streaming engine
//! (`measurement::stream`) exists to break that coupling; this bench proves
//! it on a week of simulated time:
//!
//! * one population (the 14-day Extended scenario at a reduced scale) is
//!   measured at growing horizons — e.g. 1, 3 and 7 days of the same run —
//!   and for each horizon the bench records the **batch resident bytes**
//!   (every materialised `MeasurementDataset`) next to the **streaming peak
//!   state bytes**, in both duration-store modes;
//! * the exact mode (differential-grade, byte-identical estimates) must
//!   stay a large constant factor below batch at every horizon
//!   ([`StreamBenchReport::min_exact_ratio`]);
//! * the log-bucketed mode must be **flat**: its peak grows by at most a
//!   small factor while batch grows with the horizon
//!   ([`StreamBenchReport::bucketed_growth`] vs
//!   [`StreamBenchReport::batch_growth`]) — asserted by this module's
//!   `horizon_results_grow_with_the_horizon_and_stream_stays_small` unit
//!   test and by the CI `stream-smoke` job over `BENCH_stream.json`.
//!
//! Determinism: horizons run in input order with the same seed; every
//! reported number is content-derived (no timing in the deterministic
//! part), so stdout is byte-identical at any `--threads`.

use jsonio::Json;
use measurement::stream::StreamConfig;
use measurement::{
    batch_resident_bytes, campaign_from_output, DurationMode, StreamingMonitor,
};
use population::{MeasurementPeriod, Scenario};
use simclock::SimDuration;

/// Configuration of one long-horizon bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBenchConfig {
    /// Population scale of the Extended scenario.
    pub scale: f64,
    /// Campaign seed.
    pub seed: u64,
    /// Measurement horizons in days, ascending (capped at the Extended
    /// period's 14 days).
    pub horizons_days: Vec<u64>,
    /// Tumbling-window width of the streaming pass.
    pub window: SimDuration,
}

impl Default for StreamBenchConfig {
    fn default() -> Self {
        StreamBenchConfig {
            scale: 0.0025,
            seed: 0x57_EA_11,
            horizons_days: vec![1, 3, 7],
            window: SimDuration::from_hours(6),
        }
    }
}

/// The measured memory profile of one horizon.
#[derive(Debug, Clone, PartialEq)]
pub struct HorizonResult {
    /// Horizon length in days.
    pub days: u64,
    /// Events the primary observer recorded.
    pub events: u64,
    /// Connection records of the primary observer.
    pub connections: u64,
    /// Distinct PIDs the primary observer saw.
    pub pids: usize,
    /// Window panes the streaming pass produced.
    pub windows: usize,
    /// Resident bytes of every materialised batch data set.
    pub batch_bytes: usize,
    /// Streaming peak state bytes, exact duration store (byte-identical
    /// estimates).
    pub exact_peak_bytes: usize,
    /// Streaming peak state bytes, log-bucketed duration store (flat
    /// memory, ~5 % duration resolution).
    pub bucketed_peak_bytes: usize,
}

impl HorizonResult {
    /// Batch bytes per streaming exact-mode byte at this horizon.
    pub fn exact_ratio(&self) -> f64 {
        if self.exact_peak_bytes == 0 {
            return 0.0;
        }
        self.batch_bytes as f64 / self.exact_peak_bytes as f64
    }
}

/// Aggregate result of a long-horizon bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamBenchReport {
    /// The configuration of the run.
    pub config: StreamBenchConfig,
    /// One result per horizon, in input order.
    pub horizons: Vec<HorizonResult>,
    /// Wall-clock seconds (non-deterministic; excluded from
    /// [`Self::deterministic_json`]).
    pub wall_secs: f64,
}

impl StreamBenchReport {
    /// Growth of batch resident bytes from the first to the last horizon.
    pub fn batch_growth(&self) -> f64 {
        growth(self.horizons.first(), self.horizons.last(), |h| h.batch_bytes)
    }

    /// Growth of the exact-mode streaming peak across the horizons.
    pub fn exact_growth(&self) -> f64 {
        growth(self.horizons.first(), self.horizons.last(), |h| h.exact_peak_bytes)
    }

    /// Growth of the bucketed-mode streaming peak across the horizons —
    /// the number that must stay ≈ flat while [`Self::batch_growth`]
    /// scales with the horizon.
    pub fn bucketed_growth(&self) -> f64 {
        growth(self.horizons.first(), self.horizons.last(), |h| h.bucketed_peak_bytes)
    }

    /// The smallest batch-over-exact-stream memory ratio over all horizons.
    pub fn min_exact_ratio(&self) -> f64 {
        self.horizons
            .iter()
            .map(HorizonResult::exact_ratio)
            .fold(f64::INFINITY, f64::min)
    }

    /// The deterministic part of the report — byte-identical across
    /// `--threads` values; the CI smoke job compares exactly this.
    pub fn deterministic_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("scale", self.config.scale);
        obj.insert("seed", self.config.seed);
        obj.insert("window_secs", self.config.window.as_secs());
        obj.insert(
            "horizons",
            Json::Array(
                self.horizons
                    .iter()
                    .map(|h| {
                        let mut row = Json::object();
                        row.insert("days", h.days);
                        row.insert("events", h.events);
                        row.insert("connections", h.connections);
                        row.insert("pids", h.pids);
                        row.insert("windows", h.windows);
                        row.insert("batch_bytes", h.batch_bytes);
                        row.insert("exact_peak_bytes", h.exact_peak_bytes);
                        row.insert("bucketed_peak_bytes", h.bucketed_peak_bytes);
                        row.insert("exact_ratio", round2(h.exact_ratio()));
                        row
                    })
                    .collect(),
            ),
        );
        obj.insert("batch_growth", round2(self.batch_growth()));
        obj.insert("exact_growth", round2(self.exact_growth()));
        obj.insert("bucketed_growth", round2(self.bucketed_growth()));
        obj.insert("min_exact_ratio", round2(self.min_exact_ratio()));
        obj
    }

    /// The full report including timing, for `BENCH_stream.json`.
    pub fn full_json(&self) -> Json {
        let mut obj = self.deterministic_json();
        obj.insert("wall_secs", round2(self.wall_secs));
        obj
    }

    /// Human-readable one-screen summary (stderr of the CLI).
    pub fn summary(&self) -> String {
        let last = self.horizons.last();
        format!(
            "{} horizons to {} days | batch grows {:.1}x, stream exact {:.1}x (≥{:.1}x smaller \
             throughout), bucketed {:.2}x (flat)",
            self.horizons.len(),
            last.map(|h| h.days).unwrap_or(0),
            self.batch_growth(),
            self.exact_growth(),
            self.min_exact_ratio(),
            self.bucketed_growth(),
        )
    }
}

fn growth(first: Option<&HorizonResult>, last: Option<&HorizonResult>, f: impl Fn(&HorizonResult) -> usize) -> f64 {
    match (first, last) {
        (Some(first), Some(last)) if f(first) > 0 => f(last) as f64 / f(first) as f64,
        _ => 0.0,
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Runs one horizon: simulates the Extended population truncated to `days`,
/// materialises the batch view, and replays the primary log through the
/// streaming engine in both duration-store modes.
pub fn run_horizon(cfg: &StreamBenchConfig, days: u64) -> HorizonResult {
    let days = days.clamp(1, 14);
    let scenario = Scenario::new(MeasurementPeriod::Extended)
        .with_scale(cfg.scale)
        .with_seed(cfg.seed);
    let mut run = scenario.build();
    // Same population and seed at every horizon; only the measurement
    // window grows — the cleanest apples-to-apples memory comparison.
    run.config.duration = SimDuration::from_days(days);
    let duration = run.config.duration;
    let scenario = run.scenario.clone();
    let participants = run.ground_truth_participants;
    let output = run.simulate();

    let primary = output.log("go-ipfs").expect("Extended deploys go-ipfs");
    let stream_of = |mode: DurationMode, retained: usize| {
        let config = StreamConfig::for_observer("go-ipfs", primary.dht_server, duration, cfg.window)
            .with_duration_mode(mode)
            .with_retained_panes(retained);
        StreamingMonitor::new(config).ingest_log(primary)
    };
    // Exact mode retains everything (differential-grade); the bucketed
    // production profile keeps a day of full pane states for sliding
    // windows and the complete compact series.
    let panes_per_day = (SimDuration::from_days(1).as_millis()
        / cfg.window.as_millis().max(1)) as usize;
    let exact = stream_of(DurationMode::Exact, usize::MAX);
    let bucketed = stream_of(DurationMode::LogBucketed, panes_per_day.max(4));

    let campaign = campaign_from_output(scenario, participants, duration, output);
    HorizonResult {
        days,
        events: exact.events,
        connections: exact.connections,
        pids: exact.pids,
        windows: exact.panes.len(),
        batch_bytes: batch_resident_bytes(&campaign),
        exact_peak_bytes: exact.peak_state_bytes,
        bucketed_peak_bytes: bucketed.peak_state_bytes,
    }
}

/// Runs the full long-horizon bench, invoking `progress` after each horizon.
pub fn run_stream_bench_with_progress(
    cfg: &StreamBenchConfig,
    progress: impl Fn(&HorizonResult),
) -> StreamBenchReport {
    let started = std::time::Instant::now();
    let horizons: Vec<HorizonResult> = cfg
        .horizons_days
        .iter()
        .map(|&days| {
            let result = run_horizon(cfg, days);
            progress(&result);
            result
        })
        .collect();
    StreamBenchReport {
        config: cfg.clone(),
        horizons,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Runs the full long-horizon bench without progress reporting.
pub fn run_stream_bench(cfg: &StreamBenchConfig) -> StreamBenchReport {
    run_stream_bench_with_progress(cfg, |_| {})
}

/// A reduced configuration for smoke tests and CI (minutes of sim time per
/// day-equivalent would be too coarse; this keeps real day horizons at a
/// tiny scale instead).
pub fn smoke_config() -> StreamBenchConfig {
    StreamBenchConfig {
        scale: 0.0015,
        horizons_days: vec![1, 3],
        ..StreamBenchConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn horizon_results_grow_with_the_horizon_and_stream_stays_small() {
        let cfg = smoke_config();
        let report = run_stream_bench(&cfg);
        assert_eq!(report.horizons.len(), 2);
        let (short, long) = (&report.horizons[0], &report.horizons[1]);
        assert!(long.connections > short.connections, "more horizon, more churn");
        assert!(long.batch_bytes > short.batch_bytes, "batch memory grows");
        assert!(
            report.min_exact_ratio() >= 4.0,
            "exact streaming must stay ≥4x below batch, got {:.2} \
             (batch {} B vs stream {} B at {} days)",
            report.min_exact_ratio(),
            long.batch_bytes,
            long.exact_peak_bytes,
            long.days
        );
        assert!(
            report.bucketed_growth() * 2.0 <= report.batch_growth(),
            "bucketed streaming must grow at most half as fast as batch \
             (stream {:.2}x vs batch {:.2}x)",
            report.bucketed_growth(),
            report.batch_growth()
        );
    }

    #[test]
    fn deterministic_json_is_reproducible() {
        let cfg = StreamBenchConfig {
            scale: 0.001,
            horizons_days: vec![1, 2],
            ..smoke_config()
        };
        let a = run_stream_bench(&cfg);
        let b = run_stream_bench(&cfg);
        assert_eq!(
            a.deterministic_json().to_string_compact(),
            b.deterministic_json().to_string_compact()
        );
        assert!(a.full_json().get("wall_secs").is_some());
        assert!(a.summary().contains("horizons"));
    }
}
