//! The estimator calibration bench behind `repro estimators` and
//! `BENCH_estimators.json`.
//!
//! One run answers the question the paper leaves open — *which* network-size
//! estimator should a passive deployment trust under which churn regime? —
//! by driving the whole calibration lab end to end:
//!
//! * `measurement::replicate` reruns the vantage suite R times with
//!   deterministically derived seeds (replicate 0 is the base seed itself);
//! * one streaming campaign per scenario supplies the Kaplan–Meier
//!   session-lifetime context (`analysis::survival`);
//! * `analysis::calibration` turns the replicates into per-regime coverage,
//!   signed bias and the estimator leaderboard, with seeded-bootstrap CI95s
//!   next to the analytic ones.
//!
//! Determinism: everything in [`EstimatorsBenchReport::deterministic_json`]
//! is content-derived — the CI smoke job compares stdout of a 1-thread run
//! against an 8-thread run byte for byte. Wall-clock timing goes only into
//! the full report (`BENCH_estimators.json`) and stderr.

use analysis::calibration::{calibration_report, CalibrationReport};
use jsonio::Json;
use measurement::{run_replicated_vantage_suite, run_stream_suite};
use population::{ChurnScenario, MeasurementPeriod};
use simclock::SimDuration;

/// Configuration of one calibration bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorsBenchConfig {
    /// Measurement period of every campaign.
    pub period: MeasurementPeriod,
    /// Population scale.
    pub scale: f64,
    /// Base seed (replicate 0 runs it verbatim).
    pub seed: u64,
    /// Vantage points per campaign (capture occasions).
    pub vantages: usize,
    /// Seeded replicates per (scenario × vantage count) cell.
    pub replicates: usize,
    /// Bootstrap resamples per replicate (0 = analytic CIs only).
    pub bootstrap: usize,
    /// Tumbling-window width of the survival-context streaming pass.
    pub window: SimDuration,
    /// Churn regimes to calibrate under.
    pub scenarios: Vec<ChurnScenario>,
}

impl Default for EstimatorsBenchConfig {
    fn default() -> Self {
        EstimatorsBenchConfig {
            period: MeasurementPeriod::P4,
            scale: 0.005,
            seed: 1975,
            vantages: 3,
            replicates: 5,
            bootstrap: 200,
            window: SimDuration::from_hours(6),
            scenarios: ChurnScenario::all(),
        }
    }
}

/// The complete result of one calibration bench run.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimatorsBenchReport {
    /// The configuration of the run.
    pub config: EstimatorsBenchConfig,
    /// The calibration report (cells, coverage, leaderboards).
    pub report: CalibrationReport,
    /// Wall-clock seconds (non-deterministic; excluded from
    /// [`Self::deterministic_json`]).
    pub wall_secs: f64,
}

impl EstimatorsBenchReport {
    /// The deterministic part of the report — byte-identical across
    /// `--threads` values; the CI smoke job compares exactly this.
    pub fn deterministic_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("period", self.config.period.label());
        obj.insert("scale", self.config.scale);
        obj.insert("seed", self.config.seed);
        obj.insert("vantages", self.config.vantages);
        obj.insert("replicates", self.config.replicates);
        obj.insert("bootstrap", self.config.bootstrap);
        obj.insert("window_secs", self.config.window.as_secs());
        obj.insert("calibration", self.report.to_json());
        obj
    }

    /// The full report including timing, for `BENCH_estimators.json`.
    pub fn full_json(&self) -> Json {
        let mut obj = self.deterministic_json();
        obj.insert("wall_secs", round2(self.wall_secs));
        obj
    }

    /// Human-readable one-line summary (stderr of the CLI).
    pub fn summary(&self) -> String {
        let winners: Vec<String> = self
            .report
            .cells
            .iter()
            .filter_map(|cell| {
                cell.leaderboard
                    .first()
                    .map(|best| format!("{}:{}", cell.scenario, best))
            })
            .collect();
        format!(
            "{} cells x {} replicates ({} bootstrap resamples) | best per regime: {}",
            self.report.cells.len(),
            self.report.replicates,
            self.config.bootstrap,
            winners.join(" ")
        )
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Runs the calibration bench, invoking `progress` with one message per
/// completed stage (replicated campaigns, survival streams, calibration).
pub fn run_estimators_bench_with_progress(
    cfg: &EstimatorsBenchConfig,
    threads: usize,
    progress: impl Fn(&str),
) -> EstimatorsBenchReport {
    let started = std::time::Instant::now();
    let suites = run_replicated_vantage_suite(
        cfg.period,
        cfg.scale,
        cfg.seed,
        cfg.vantages,
        &cfg.scenarios,
        cfg.replicates,
        threads,
    );
    progress(&format!(
        "{} replicated campaigns done",
        suites.len() * cfg.scenarios.len()
    ));
    // The survival context measures the base realisation (replicate 0's
    // seed) once per scenario; a single vantage suffices — session
    // durations are a property of the primary observer.
    let streams = run_stream_suite(
        cfg.period, cfg.scale, cfg.seed, 1, cfg.window, &cfg.scenarios, threads,
    );
    progress(&format!("{} survival streams done", streams.len()));
    let report = calibration_report(&suites, &streams, cfg.bootstrap);
    progress("calibration done");
    EstimatorsBenchReport {
        config: cfg.clone(),
        report,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

/// Runs the calibration bench without progress reporting.
pub fn run_estimators_bench(cfg: &EstimatorsBenchConfig, threads: usize) -> EstimatorsBenchReport {
    run_estimators_bench_with_progress(cfg, threads, |_| {})
}

/// A reduced configuration for smoke tests and CI.
pub fn smoke_config() -> EstimatorsBenchConfig {
    EstimatorsBenchConfig {
        period: MeasurementPeriod::P1,
        scale: 0.003,
        replicates: 2,
        bootstrap: 50,
        scenarios: vec![ChurnScenario::Baseline, ChurnScenario::flash_crowd()],
        ..EstimatorsBenchConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_covers_every_cell_and_is_deterministic() {
        let cfg = smoke_config();
        let a = run_estimators_bench(&cfg, 1);
        let b = run_estimators_bench(&cfg, 4);
        assert_eq!(
            a.deterministic_json().to_string_compact(),
            b.deterministic_json().to_string_compact(),
            "stdout must not depend on the thread count"
        );
        assert_eq!(a.report.cells.len(), 2);
        for cell in &a.report.cells {
            assert_eq!(cell.replicates, 2);
            assert_eq!(cell.estimators.len(), 4);
            assert!(cell.survival.is_some(), "every cell carries its KM context");
            assert_eq!(cell.leaderboard.len(), 4);
        }
        assert!(a.full_json().get("wall_secs").is_some());
        assert!(a.summary().contains("best per regime"));
    }
}
