//! The million-peer scale harness behind `repro scale` and `benches/scale.rs`.
//!
//! The ROADMAP north star is million-peer campaigns at hardware speed; the
//! columnar observation pipeline (netsim's `ObservationTable` +
//! `IdentifyRegistry`) exists to make that possible. This harness proves it:
//!
//! * it runs a synthetic campaign of `peers` remote peers, split into
//!   `shards` independent simulations (each shard is one engine run with its
//!   own derived seed), executed on `threads` worker threads;
//! * it reports **events/sec** (wall-clock engine + ingest throughput) and a
//!   **bytes-per-event** peak-RSS proxy for the columnar store;
//! * it measures the same population through the *compat path* — fully
//!   materialised `ObservedEvent` values, the representation the engine used
//!   before the refactor — at a reduced population, and reports the ratio.
//!
//! Determinism: shard seeds are derived from `(seed, shard)` with SplitMix64
//! and results are aggregated in shard order, so the deterministic part of a
//! [`ScaleReport`] is byte-identical at any `threads` value — CI pins this
//! with `repro scale ... --threads 1` vs `--threads N`.

use jsonio::Json;
use netsim::obs::identify_heap_bytes;
use netsim::{
    run_full_protocol, DhtRole, FullProtocolConfig, MailboxStats, Network, NetworkConfig,
    ObservationKind, ObserverSpec, RemotePeerSpec, SimulationOutput,
};
use p2pmodel::{
    AgentVersion, ConnLimits, IdentifyInfo, IpAddress, Multiaddr, PeerId, ProtocolSet,
};
use simclock::rng::splitmix64;
use simclock::{SimDuration, SimRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Configuration of one scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Total synthetic population across all shards.
    pub peers: usize,
    /// Number of independent simulation shards the population is split into.
    pub shards: usize,
    /// Worker threads executing the shards (does not affect results).
    pub threads: usize,
    /// Simulated duration of every shard.
    pub duration: SimDuration,
    /// Base seed; shard seeds derive from it with SplitMix64.
    pub seed: u64,
    /// Population size of the compat-path comparison run (kept small: the
    /// enum representation is exactly what the harness exists to retire).
    pub compat_peers: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            peers: 1_000_000,
            shards: 64,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            duration: SimDuration::from_mins(10),
            seed: 0x5ca1_e000,
            compat_peers: 20_000,
        }
    }
}

impl ScaleConfig {
    /// The shard seed for shard `shard`.
    pub fn shard_seed(&self, shard: usize) -> u64 {
        let mut state = self.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(shard as u64 + 1);
        splitmix64(&mut state)
    }

    /// Peers assigned to shard `shard` (the remainder goes to the first
    /// shards).
    pub fn shard_population(&self, shard: usize) -> usize {
        let base = self.peers / self.shards;
        let extra = usize::from(shard < self.peers % self.shards);
        base + extra
    }
}

/// Deterministic result of one shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardResult {
    /// Shard index.
    pub shard: usize,
    /// Peers simulated in this shard.
    pub peers: usize,
    /// Events recorded, by kind: opened / closed / identify / discovered.
    pub events: [u64; 4],
    /// Resident bytes of the shard's observation table (capacity proxy).
    pub table_bytes: usize,
    /// Resident bytes of the shard's interning registry.
    pub registry_bytes: usize,
    /// Order-sensitive FNV checksum over the table columns.
    pub checksum: u64,
}

impl ShardResult {
    /// Total events of the shard.
    pub fn total_events(&self) -> u64 {
        self.events.iter().sum()
    }
}

/// Aggregate result of a scale run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleReport {
    /// The configuration the run used.
    pub config: ScaleConfig,
    /// Per-shard results, in shard order.
    pub shards: Vec<ShardResult>,
    /// Combined checksum over all shard checksums, in shard order.
    pub checksum: u64,
    /// Total observed events across shards.
    pub total_events: u64,
    /// Columnar bytes per event across all shards (tables + registries).
    pub columnar_bytes_per_event: f64,
    /// Compat-path comparison at `compat_peers` population.
    pub compat: CompatComparison,
    /// Wall-clock seconds of the sharded run (simulation + column writes).
    /// Non-deterministic; excluded from [`Self::deterministic_json`].
    pub wall_secs: f64,
}

/// Bytes-per-event comparison between the columnar store and the enum
/// representation, measured on the same simulated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct CompatComparison {
    /// Population of the comparison run.
    pub peers: usize,
    /// Events in the comparison trace.
    pub events: u64,
    /// Columnar bytes per event (table + registry, capacity proxy).
    pub columnar_bytes_per_event: f64,
    /// Enum bytes per event: `size_of::<ObservedEvent>()` per event plus the
    /// deep identify-payload clone every identify event used to carry.
    pub enum_bytes_per_event: f64,
}

impl CompatComparison {
    /// How many times smaller the columnar representation is.
    pub fn ratio(&self) -> f64 {
        if self.columnar_bytes_per_event <= 0.0 {
            return 0.0;
        }
        self.enum_bytes_per_event / self.columnar_bytes_per_event
    }
}

impl ScaleReport {
    /// Events per wall-clock second of the sharded run.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.total_events as f64 / self.wall_secs
    }

    /// The deterministic part of the report: everything except wall-clock
    /// timing. Byte-identical across `--threads` values — the CI smoke job
    /// compares exactly this.
    pub fn deterministic_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("peers", self.config.peers as u64);
        obj.insert("shards", self.config.shards as u64);
        obj.insert("duration_secs", self.config.duration.as_millis() / 1000);
        obj.insert("seed", self.config.seed);
        obj.insert("total_events", self.total_events);
        obj.insert("checksum", format!("{:016x}", self.checksum));
        obj.insert(
            "columnar_bytes_per_event",
            round2(self.columnar_bytes_per_event),
        );
        let mut compat = Json::object();
        compat.insert("peers", self.compat.peers as u64);
        compat.insert("events", self.compat.events);
        compat.insert(
            "columnar_bytes_per_event",
            round2(self.compat.columnar_bytes_per_event),
        );
        compat.insert(
            "enum_bytes_per_event",
            round2(self.compat.enum_bytes_per_event),
        );
        compat.insert("ratio", round2(self.compat.ratio()));
        obj.insert("compat", compat);
        // Rolled-up shard summary: min/max/total events plus the combined
        // checksum. A 64-shard campaign used to dump 64 per-shard rows here;
        // the rollup keeps the file O(1) while still pinning determinism
        // (any shard diverging changes the combined checksum).
        let events_min = self
            .shards
            .iter()
            .map(ShardResult::total_events)
            .min()
            .unwrap_or(0);
        let events_max = self
            .shards
            .iter()
            .map(ShardResult::total_events)
            .max()
            .unwrap_or(0);
        let mut rollup = Json::object();
        rollup.insert("shards", self.shards.len() as u64);
        rollup.insert("events_min", events_min);
        rollup.insert("events_max", events_max);
        rollup.insert("events_total", self.total_events);
        rollup.insert("checksum", format!("{:016x}", self.checksum));
        obj.insert("shard_summary", rollup);
        obj
    }

    /// The full report including timing, for `BENCH_scale.json`.
    pub fn full_json(&self) -> Json {
        let mut obj = self.deterministic_json();
        obj.insert("wall_secs", round2(self.wall_secs));
        obj.insert("events_per_sec", round2(self.events_per_sec()));
        obj.insert("threads", self.config.threads as u64);
        obj
    }

    /// Human-readable one-screen summary (stderr of `repro scale`).
    pub fn summary(&self) -> String {
        format!(
            "peers {} | shards {} | events {} | {:.0} events/sec | columnar {:.1} B/event | \
             compat@{}: enum {:.1} B/event vs columnar {:.1} B/event = {:.1}x",
            self.config.peers,
            self.config.shards,
            self.total_events,
            self.events_per_sec(),
            self.columnar_bytes_per_event,
            self.compat.peers,
            self.compat.enum_bytes_per_event,
            self.compat.columnar_bytes_per_event,
            self.compat.ratio()
        )
    }
}

fn round2(v: f64) -> f64 {
    (v * 100.0).round() / 100.0
}

/// Builds the synthetic population of one shard: a paper-shaped mix of
/// always-on servers, intermittent peers and one-shot visitors, with a small
/// number of distinct identify payloads so the registry stays dense.
pub fn synthetic_population(cfg: &ScaleConfig, shard: usize) -> Vec<RemotePeerSpec> {
    use netsim::{DialBehavior, SessionPattern};
    let count = cfg.shard_population(shard);
    let mut rng = SimRng::seed_from(cfg.shard_seed(shard) ^ POPULATION_SEED_DOMAIN);
    let agents = [
        "go-ipfs/0.11.0/",
        "go-ipfs/0.10.0/abc",
        "go-ipfs/0.8.0/",
        "hydra-booster/0.7.4",
    ];
    let duration_secs = cfg.duration.as_secs_f64();
    (0..count)
        .map(|i| {
            // Globally unique PID label: shard-stratified.
            let label = (shard as u64) << 40 | i as u64;
            let server = rng.chance(0.7);
            let protocols = if server {
                ProtocolSet::go_ipfs_dht_server()
            } else {
                ProtocolSet::go_ipfs_dht_client()
            };
            let agent = AgentVersion::parse(agents[rng.index(agents.len())]);
            let addr = Multiaddr::default_swarm(IpAddress::random_v4(&mut rng));
            let session = match rng.index(10) {
                0..=1 => SessionPattern::AlwaysOn,
                2..=6 => SessionPattern::Intermittent {
                    online_median_secs: duration_secs * 0.4,
                    offline_median_secs: duration_secs * 0.3,
                    sigma: 0.8,
                    initial_delay_secs: rng.unit() * duration_secs * 0.5,
                },
                _ => SessionPattern::OneShot {
                    arrival_secs: rng.unit() * duration_secs * 0.8,
                    stay_secs: duration_secs * 0.2,
                },
            };
            // Churn-heavy, as the paper observes: connections are held for a
            // small fraction of the run and re-dialed quickly, so events
            // dwarf peers (the regime the columnar store is built for).
            let behavior = DialBehavior {
                dial_server_prob: 0.8,
                dial_client_prob: 0.01,
                redial_median_secs: duration_secs * 0.06,
                redial_sigma: 0.8,
                reconnect: true,
                hold_server_median_secs: duration_secs * 0.08,
                hold_client_median_secs: duration_secs * 0.04,
                hold_sigma: 1.0,
                identify_prob: 0.97,
                observer_value: 0,
            };
            RemotePeerSpec::new(
                PeerId::derived(label),
                addr,
                IdentifyInfo::new(agent, protocols, Vec::new()),
            )
            .with_session(session)
            .with_behavior(behavior)
            .with_gossip_visibility(0.02)
        })
        .collect()
}

/// Seed-domain separator: keeps population sampling decorrelated from the
/// engine's own RNG stream, which also starts from the shard seed.
const POPULATION_SEED_DOMAIN: u64 = 0x0b5e_7a71_0000_0001;

fn shard_observer(population: usize) -> ObserverSpec {
    let low = (population / 8).max(64);
    ObserverSpec::new(
        "scale-observer",
        PeerId::derived(u64::MAX - 1),
        DhtRole::Server,
        ConnLimits::new(low, low * 2),
    )
}

fn shard_network(cfg: &ScaleConfig, shard: usize) -> Network {
    let population = synthetic_population(cfg, shard);
    let config = NetworkConfig::single_observer(
        cfg.shard_seed(shard),
        cfg.duration,
        shard_observer(population.len()),
    );
    // The scale harness measures raw observation throughput; synthesising a
    // million routing tables is not part of that budget.
    Network::new(config, population).with_dht_tracking(false)
}

/// Runs one shard and extracts its deterministic result.
pub fn run_shard(cfg: &ScaleConfig, shard: usize) -> ShardResult {
    let output = shard_network(cfg, shard).run();
    let log = &output.logs[0];
    let table = log.table();
    let mut events = [0u64; 4];
    for kind in table.kinds() {
        let bucket = match kind {
            ObservationKind::OpenedInbound | ObservationKind::OpenedOutbound => 0,
            ObservationKind::Closed => 1,
            ObservationKind::Identify => 2,
            ObservationKind::Discovered => 3,
        };
        events[bucket] += 1;
    }
    ShardResult {
        shard,
        peers: cfg.shard_population(shard),
        events,
        table_bytes: table.approx_bytes(),
        registry_bytes: log.registry().approx_bytes(),
        checksum: table.checksum(),
    }
}

/// Measures the compat (enum) representation against the columnar store on
/// one identical trace of `cfg.compat_peers` peers.
///
/// The enum side is *materialised*, not modelled: the trace is collected
/// into an actual `Vec<ObservedEvent>` (the exact value the engine used to
/// buffer per observer) and its resident bytes are the vector's capacity
/// plus the heap owned by each materialised identify payload.
pub fn run_compat_comparison(cfg: &ScaleConfig) -> CompatComparison {
    use std::mem::size_of;
    let compat_cfg = ScaleConfig {
        peers: cfg.compat_peers,
        shards: 1,
        ..cfg.clone()
    };
    let output: SimulationOutput = shard_network(&compat_cfg, 0).run();
    let log = &output.logs[0];
    let table = log.table();
    let registry = log.registry();

    let columnar_bytes = table.approx_bytes() + registry.approx_bytes();

    // The representation the refactor retired: one tagged ObservedEvent per
    // row, every identify row carrying a deep clone of its payload.
    let materialised: Vec<netsim::ObservedEvent> = log.events().collect();
    let mut enum_bytes = materialised.capacity() * size_of::<netsim::ObservedEvent>();
    for event in &materialised {
        if let netsim::ObservedEvent::IdentifyReceived { info, .. } = event {
            enum_bytes += identify_heap_bytes(info);
        }
    }

    let events = table.len() as u64;
    let per_event = |bytes: usize| {
        if events == 0 {
            0.0
        } else {
            bytes as f64 / events as f64
        }
    };
    CompatComparison {
        peers: cfg.compat_peers,
        events,
        columnar_bytes_per_event: per_event(columnar_bytes),
        enum_bytes_per_event: per_event(enum_bytes),
    }
}

/// Runs the full scale campaign: all shards on `threads` workers, then the
/// compat comparison. `progress` is invoked from worker threads as shards
/// finish (out of order; the report is always in shard order).
pub fn run_scale_with_progress(
    cfg: &ScaleConfig,
    progress: impl Fn(&ShardResult) + Sync,
) -> ScaleReport {
    let started = std::time::Instant::now();
    let threads = cfg.threads.clamp(1, cfg.shards.max(1));
    let cursor = AtomicUsize::new(0);
    let slots: Mutex<Vec<Option<ShardResult>>> = Mutex::new(vec![None; cfg.shards]);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let shard = cursor.fetch_add(1, Ordering::Relaxed);
                if shard >= cfg.shards {
                    break;
                }
                let result = run_shard(cfg, shard);
                progress(&result);
                slots.lock().expect("scale shard lock")[shard] = Some(result);
            });
        }
    });
    let shards: Vec<ShardResult> = slots
        .into_inner()
        .expect("scale shard lock")
        .into_iter()
        .map(|slot| slot.expect("every shard completes"))
        .collect();
    let wall_secs = started.elapsed().as_secs_f64();

    let total_events: u64 = shards.iter().map(ShardResult::total_events).sum();
    let total_bytes: usize = shards
        .iter()
        .map(|s| s.table_bytes + s.registry_bytes)
        .sum();
    let mut checksum: u64 = 0xcbf2_9ce4_8422_2325;
    for shard in &shards {
        checksum ^= shard.checksum;
        checksum = checksum.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let compat = run_compat_comparison(cfg);
    ScaleReport {
        config: cfg.clone(),
        shards,
        checksum,
        total_events,
        columnar_bytes_per_event: if total_events == 0 {
            0.0
        } else {
            total_bytes as f64 / total_events as f64
        },
        compat,
        wall_secs,
    }
}

/// Runs the full scale campaign without progress reporting.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    run_scale_with_progress(cfg, |_| {})
}

/// A small default configuration for smoke tests and benches (a few thousand
/// peers, seconds of wall time).
pub fn smoke_config() -> ScaleConfig {
    ScaleConfig {
        peers: 4_000,
        shards: 4,
        threads: 2,
        duration: SimDuration::from_mins(10),
        compat_peers: 2_000,
        ..ScaleConfig::default()
    }
}

/// Seed-domain separator of the true-protocol population stream.
const TRUE_PROTOCOL_POPULATION_DOMAIN: u64 = 0x0b5e_7a71_0000_0002;

/// Configuration of a true-protocol campaign: one coherent population run
/// through the cross-shard mailbox engine (`netsim::mailbox`), where the
/// shards exchange dial/gossip/identify events instead of simulating
/// independent sub-networks.
#[derive(Debug, Clone, PartialEq)]
pub struct TrueProtocolConfig {
    /// Total population, partitioned across engine shards by ownership.
    pub peers: usize,
    /// Number of lock-step engine shards.
    pub shards: usize,
    /// Worker threads for the epochs (does not affect results).
    pub threads: usize,
    /// Simulated duration of the campaign.
    pub duration: SimDuration,
    /// Epoch length = uniform cross-entity latency.
    pub epoch: SimDuration,
    /// Seed for population sampling and every per-entity RNG stream.
    pub seed: u64,
    /// Number of passive observers (round-robined across shards).
    pub observers: usize,
}

impl Default for TrueProtocolConfig {
    fn default() -> Self {
        TrueProtocolConfig {
            peers: 10_000_000,
            shards: 64,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            duration: SimDuration::from_mins(10),
            epoch: SimDuration::from_secs(60),
            seed: 0x5ca1_e000,
            observers: 4,
        }
    }
}

/// A small true-protocol configuration for smoke tests and CI.
pub fn true_protocol_smoke_config() -> TrueProtocolConfig {
    TrueProtocolConfig {
        peers: 20_000,
        shards: 4,
        threads: 2,
        ..TrueProtocolConfig::default()
    }
}

/// Builds the campaign's full population in global index order.
///
/// One global sampling stream, *not* shard-stratified: the population must
/// be identical for every shard count, or shard-count invariance of the
/// trace would be meaningless.
pub fn true_protocol_population(cfg: &TrueProtocolConfig) -> Vec<RemotePeerSpec> {
    use netsim::{DialBehavior, SessionPattern};
    let mut rng = SimRng::seed_from(cfg.seed ^ TRUE_PROTOCOL_POPULATION_DOMAIN);
    let agents = [
        "go-ipfs/0.11.0/",
        "go-ipfs/0.10.0/abc",
        "go-ipfs/0.8.0/",
        "hydra-booster/0.7.4",
    ];
    let duration_secs = cfg.duration.as_secs_f64();
    (0..cfg.peers)
        .map(|i| {
            let server = rng.chance(0.7);
            let protocols = if server {
                ProtocolSet::go_ipfs_dht_server()
            } else {
                ProtocolSet::go_ipfs_dht_client()
            };
            let agent = AgentVersion::parse(agents[rng.index(agents.len())]);
            let addr = Multiaddr::default_swarm(IpAddress::random_v4(&mut rng));
            let session = match rng.index(10) {
                0..=1 => SessionPattern::AlwaysOn,
                2..=6 => SessionPattern::Intermittent {
                    online_median_secs: duration_secs * 0.4,
                    offline_median_secs: duration_secs * 0.3,
                    sigma: 0.8,
                    initial_delay_secs: rng.unit() * duration_secs * 0.5,
                },
                _ => SessionPattern::OneShot {
                    arrival_secs: rng.unit() * duration_secs * 0.8,
                    stay_secs: duration_secs * 0.2,
                },
            };
            // Dial probabilities are scaled down from the per-shard harness:
            // here every peer shares the *same* few observers, so per-session
            // dial odds of a few percent already produce hundreds of
            // thousands of connections per observer at 10 M peers.
            let behavior = DialBehavior {
                dial_server_prob: 0.05,
                dial_client_prob: 0.002,
                redial_median_secs: duration_secs * 0.06,
                redial_sigma: 0.8,
                reconnect: true,
                hold_server_median_secs: duration_secs * 0.08,
                hold_client_median_secs: duration_secs * 0.04,
                hold_sigma: 1.0,
                identify_prob: 0.9,
                observer_value: 0,
            };
            RemotePeerSpec::new(
                PeerId::derived(i as u64),
                addr,
                IdentifyInfo::new(agent, protocols, Vec::new()),
            )
            .with_session(session)
            .with_behavior(behavior)
            .with_gossip_visibility(0.01)
        })
        .collect()
}

/// The campaign's observer fleet: one go-ipfs-like head plus hydra-style
/// heads, paper-period connection limits, round-robined across shards by
/// the engine.
pub fn true_protocol_observers(cfg: &TrueProtocolConfig) -> Vec<ObserverSpec> {
    (0..cfg.observers.max(1))
        .map(|o| {
            if o == 0 {
                ObserverSpec::new(
                    "go-ipfs",
                    PeerId::derived(u64::MAX - 16),
                    DhtRole::Server,
                    ConnLimits::new(600, 900),
                )
            } else {
                ObserverSpec::new(
                    format!("hydra-h{}", o - 1),
                    PeerId::derived(u64::MAX - 16 + o as u64),
                    DhtRole::Server,
                    ConnLimits::new(700, 900),
                )
            }
        })
        .collect()
}

/// Result of a true-protocol campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TrueProtocolReport {
    /// The configuration the campaign used.
    pub config: TrueProtocolConfig,
    /// Engine counters (epochs, mailbox traffic, checksum).
    pub stats: MailboxStats,
    /// Wall-clock seconds of the engine run (excludes population sampling).
    /// Non-deterministic; excluded from [`Self::deterministic_json`].
    pub wall_secs: f64,
}

impl TrueProtocolReport {
    /// Simulator events per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.stats.sim_events as f64 / self.wall_secs
    }

    /// The deterministic part of the report — byte-identical across
    /// `--threads` values at a fixed shard count. Across shard counts the
    /// *trace* fields (`observations`, `checksum`) are invariant too, while
    /// the engine-internal counters (`sim_events`, `mailbox_events`,
    /// `cross_shard_events`) scale with the partition: broadcasts fan out
    /// once per observer-hosting shard.
    pub fn deterministic_json(&self) -> Json {
        let mut obj = Json::object();
        obj.insert("peers", self.config.peers as u64);
        obj.insert("shards", self.config.shards as u64);
        obj.insert("observers", self.config.observers as u64);
        obj.insert("duration_secs", self.config.duration.as_millis() / 1000);
        obj.insert("epoch_secs", self.config.epoch.as_millis() / 1000);
        obj.insert("seed", self.config.seed);
        obj.insert("epochs", self.stats.epochs);
        obj.insert("mailbox_events", self.stats.mailbox_events);
        obj.insert("cross_shard_events", self.stats.cross_shard_events);
        obj.insert("sim_events", self.stats.sim_events);
        obj.insert("observations", self.stats.observations);
        obj.insert("checksum", format!("{:016x}", self.stats.checksum));
        obj
    }

    /// The full report including timing, merged into `BENCH_scale.json` as
    /// the `true_protocol` row.
    pub fn full_json(&self) -> Json {
        let mut obj = self.deterministic_json();
        obj.insert("wall_secs", round2(self.wall_secs));
        obj.insert("events_per_sec", round2(self.events_per_sec()));
        obj.insert("threads", self.config.threads as u64);
        obj
    }

    /// Human-readable one-screen summary (stderr of `repro scale`).
    pub fn summary(&self) -> String {
        format!(
            "true-protocol: peers {} | shards {} | epochs {} | cross-shard events {} | \
             {} sim events | {} observations | {:.0} events/sec | checksum {:016x}",
            self.config.peers,
            self.config.shards,
            self.stats.epochs,
            self.stats.cross_shard_events,
            self.stats.sim_events,
            self.stats.observations,
            self.events_per_sec(),
            self.stats.checksum
        )
    }
}

/// Runs a true-protocol campaign: samples the global population, runs it
/// through the cross-shard mailbox engine and reports the counters. The
/// timer starts after population sampling, so `events_per_sec` measures the
/// engine, not the sampler.
pub fn run_true_protocol(cfg: &TrueProtocolConfig) -> TrueProtocolReport {
    let population = true_protocol_population(cfg);
    let engine_cfg = FullProtocolConfig::new(cfg.seed, cfg.duration, true_protocol_observers(cfg))
        .with_epoch(cfg.epoch)
        .with_shards(cfg.shards)
        .with_threads(cfg.threads);
    let started = std::time::Instant::now();
    let run = run_full_protocol(&engine_cfg, population);
    let wall_secs = started.elapsed().as_secs_f64();
    TrueProtocolReport {
        config: cfg.clone(),
        stats: run.stats,
        wall_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_population_distributes_remainder() {
        let cfg = ScaleConfig {
            peers: 10,
            shards: 3,
            ..smoke_config()
        };
        let sizes: Vec<usize> = (0..3).map(|s| cfg.shard_population(s)).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
        assert_eq!(sizes.iter().sum::<usize>(), 10);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let cfg = smoke_config();
        assert_ne!(cfg.shard_seed(0), cfg.shard_seed(1));
        assert_eq!(cfg.shard_seed(0), cfg.shard_seed(0));
    }

    #[test]
    fn scale_run_is_deterministic_across_thread_counts() {
        let mut cfg = ScaleConfig {
            peers: 600,
            shards: 3,
            threads: 1,
            compat_peers: 300,
            ..smoke_config()
        };
        let serial = run_scale(&cfg);
        cfg.threads = 3;
        let parallel = run_scale(&cfg);
        assert_eq!(
            serial.deterministic_json().to_string_compact(),
            parallel.deterministic_json().to_string_compact()
        );
        assert!(serial.total_events > 0);
    }

    #[test]
    fn deterministic_json_rolls_up_shards() {
        let cfg = ScaleConfig {
            peers: 400,
            shards: 4,
            threads: 1,
            compat_peers: 200,
            ..smoke_config()
        };
        let report = run_scale(&cfg);
        let json = report.deterministic_json();
        assert!(json.get("shard_results").is_none(), "per-shard dump must be gone");
        let rollup = json.get("shard_summary").expect("rollup present");
        assert_eq!(rollup.u64_field("shards").unwrap(), 4);
        let min = rollup.u64_field("events_min").unwrap();
        let max = rollup.u64_field("events_max").unwrap();
        let total = rollup.u64_field("events_total").unwrap();
        assert!(min <= max && max <= total);
        assert_eq!(total, report.total_events);
        assert_eq!(
            rollup.str_field("checksum").unwrap(),
            format!("{:016x}", report.checksum)
        );
    }

    #[test]
    fn true_protocol_smoke_is_shard_and_thread_invariant() {
        let base = TrueProtocolConfig {
            peers: 800,
            shards: 1,
            threads: 1,
            duration: SimDuration::from_mins(5),
            ..true_protocol_smoke_config()
        };
        let one = run_true_protocol(&base);
        assert!(one.stats.sim_events > 0);
        assert!(one.stats.observations > 0);
        let sharded = run_true_protocol(&TrueProtocolConfig {
            shards: 4,
            threads: 4,
            ..base.clone()
        });
        assert!(sharded.stats.cross_shard_events > 0);
        // The trace itself (rows recorded, checksum) must be identical;
        // engine-internal counters (events processed, mailbox traffic) scale
        // with the partition because broadcasts fan out per hosting shard.
        assert_eq!(one.stats.observations, sharded.stats.observations);
        assert_eq!(one.stats.checksum, sharded.stats.checksum);
        let threaded = run_true_protocol(&TrueProtocolConfig {
            shards: 4,
            threads: 1,
            ..base
        });
        assert_eq!(
            threaded.deterministic_json().to_string_compact(),
            sharded.deterministic_json().to_string_compact(),
            "thread count leaked into the deterministic report"
        );
    }

    #[test]
    fn columnar_representation_beats_enum_by_5x() {
        let cfg = ScaleConfig {
            peers: 2_000,
            shards: 2,
            threads: 2,
            compat_peers: 2_000,
            ..smoke_config()
        };
        let report = run_scale(&cfg);
        assert!(
            report.compat.ratio() >= 5.0,
            "columnar must be ≥5x smaller per event, got {:.2}x \
             (enum {:.1} B/event, columnar {:.1} B/event)",
            report.compat.ratio(),
            report.compat.enum_bytes_per_event,
            report.compat.columnar_bytes_per_event
        );
    }
}
