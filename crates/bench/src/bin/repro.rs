//! The reproduction harness: regenerates every table and figure of the paper
//! and prints them in a form directly comparable with the published numbers.
//!
//! ```bash
//! cargo run --release -p bench --bin repro                 # everything, default scale
//! cargo run --release -p bench --bin repro -- --scale 0.05 # larger population
//! cargo run --release -p bench --bin repro -- --only table2,fig7
//! ```
//!
//! The `sweep` subcommand runs whole grids of campaigns in parallel and
//! reports cross-seed statistics (mean / stddev / 95 % CI) as JSON on stdout
//! plus an aligned summary table on stderr:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- sweep --periods P1,P2 --seeds 8
//! cargo run --release -p bench --bin repro -- sweep --periods P4 --scales 0.005,0.01 \
//!     --tweaks baseline=1.0,tight=0.5 --threads 8 --pretty
//! cargo run --release -p bench --bin repro -- sweep --periods P4 \
//!     --scenarios baseline,flashcrowd,pidflood
//! ```
//!
//! The `scenarios` subcommand runs one period under every adversarial churn
//! regime (diurnal wave, flash crowd, mass exit, PID-rotation flood, NAT
//! churn) and emits the estimator-robustness report of
//! `analysis::robustness` as JSON on stdout:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- scenarios --period P4 --scale 0.005
//! ```
//!
//! The `vantage` subcommand deploys several primary-client vantage points
//! in one campaign and reports per-vantage horizons, pairwise overlap and
//! the Lincoln–Petersen / Chao1 capture–recapture network-size estimates of
//! `analysis::vantage` as JSON on stdout:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- vantage --vantages 3
//! cargo run --release -p bench --bin repro -- vantage --period P4 --scale 0.005 \
//!     --scenarios baseline,flashcrowd,pidflood --threads 8
//! ```
//!
//! The `scale` subcommand runs the million-peer scale harness over the
//! columnar observation pipeline: a sharded synthetic campaign reporting
//! events/sec and bytes-per-event, compared against the pre-refactor enum
//! representation, with the full report (including timing) written to
//! `BENCH_scale.json`:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- scale                  # 1M peers
//! cargo run --release -p bench --bin repro -- scale --peers 20000 --shards 8
//! ```
//!
//! The `stream` subcommand runs campaigns through the streaming single-pass
//! analysis engine (`measurement::stream` + `analysis::stream`): one
//! simulation per churn regime, teed into both the classic batch pipeline
//! and the incremental estimator, reporting the cumulative estimates (which
//! are byte-identical to batch — the differential suite pins this) plus the
//! per-window time series as JSON on stdout. With `--long-horizon` it runs
//! the week-of-sim-time memory bench instead, writing `BENCH_stream.json`:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- stream --period P4 --window-hours 6
//! cargo run --release -p bench --bin repro -- stream --vantages 3 \
//!     --scenarios baseline,flashcrowd,pidflood --threads 8
//! cargo run --release -p bench --bin repro -- stream --long-horizon --horizons 1,3,7
//! ```
//!
//! The `estimators` subcommand runs the estimator calibration lab: R seeded
//! replicates per churn regime (`measurement::replicate`), every
//! capture–recapture estimator (Lincoln–Petersen, Chao1, Chao2, first-order
//! jackknife) with analytic and seeded-bootstrap CI95s, empirical coverage,
//! signed bias and a per-regime leaderboard (`analysis::calibration`), with
//! Kaplan–Meier session-lifetime context (`analysis::survival`) per cell.
//! The full report (including timing) is written to `BENCH_estimators.json`:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- estimators --replicates 5
//! cargo run --release -p bench --bin repro -- estimators --period P4 --scale 0.005 \
//!     --scenarios baseline,flashcrowd,pidflood --vantages 3 --bootstrap 200 --threads 8
//! ```
//!
//! The `crawl` subcommand runs one period under the baseline and the
//! DHT-level adversaries (Sybil flood, eclipse, table poisoning) and emits
//! the crawler-vs-monitor disagreement report of `analysis::robustness` as
//! JSON on stdout — per-scenario measured crawl recall, adversarial
//! discoveries and truncated crawls next to the (unchanged) passive PID
//! horizon — with the timing-annotated copy written to `BENCH_crawl.json`:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- crawl --period P4 --scale 0.005
//! cargo run --release -p bench --bin repro -- crawl --scenarios baseline,poison --threads 8
//! ```
//!
//! The `export` subcommand runs a scenario suite once and persists every
//! cell as a columnar trace archive (`cell-NN-<scenario>.obsar` plus a
//! `manifest.json`), while the `analyze` subcommand reconstructs the
//! campaigns from those archives with **zero re-simulation** and reproduces
//! the robustness report byte-identically (the differential suite pins
//! this), writing size/throughput/speedup numbers to `BENCH_archive.json`:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- export --dir archives --period P4
//! cargo run --release -p bench --bin repro -- analyze --dir archives --threads 8
//! ```
//!
//! The `serve` subcommand hosts the long-lived multi-tenant monitor daemon
//! (`measurement::serve`) and its load drivers. `--listen` runs the daemon on
//! a Unix socket (with optional checkpointing for crash recovery), `--drive`
//! streams simulated campaigns into a running daemon and prints its answers,
//! `--reference` computes the identical answers in-process (the CI smoke job
//! byte-compares the two), and `--bench` runs the N-concurrent-feed load
//! harness writing ingest-throughput and query-latency numbers to
//! `BENCH_serve.json`:
//!
//! ```bash
//! cargo run --release -p bench --bin repro -- serve --listen /tmp/repro.sock \
//!     --checkpoint /tmp/repro.ck --checkpoint-every 16
//! cargo run --release -p bench --bin repro -- serve --drive /tmp/repro.sock \
//!     --period P2 --scenarios baseline,flashcrowd --shutdown
//! cargo run --release -p bench --bin repro -- serve --reference --period P2 \
//!     --scenarios baseline,flashcrowd
//! cargo run --release -p bench --bin repro -- serve --bench --tenants 1000
//! ```
//!
//! Sweep, scenario, vantage, scale, stream, estimators, crawl, export and analyze stdout is deterministic: the same configuration
//! produces byte-identical JSON regardless of `--threads` (timing numbers go
//! to the `BENCH_*.json` files and stderr only).
//!
//! Absolute values scale with the `--scale` factor (the paper measured the
//! real ~48k-peer network); the *shapes* — orderings, ratios, crossovers —
//! are the reproduction target, as documented in EXPERIMENTS.md.

use analysis::{metadata, report};
use analysis::{
    classify_peers, connection_count_cdf, connection_stats, connection_timeline, direction_stats,
    fingerprint_groups, horizon_comparison, ip_grouping, max_duration_cdf, network_size_estimate,
    pid_growth, role_switches, version_changes,
};
use measurement::sweep::{ObserverTweak, SweepGrid, SweepRunner};
use measurement::{run_period, run_scenario_suite, run_vantage_suite, MeasurementCampaign};
use population::{ChurnScenario, MeasurementPeriod, Scenario};
use simclock::{Cdf, SimDuration};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Options {
    scale: f64,
    seed: u64,
    only: Option<Vec<String>>,
}

fn parse_args() -> Options {
    let mut options = Options {
        scale: 0.02,
        seed: 1975,
        only: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                options.scale = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(options.scale);
                i += 2;
            }
            "--seed" => {
                options.seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(options.seed);
                i += 2;
            }
            "--only" => {
                options.only = args
                    .get(i + 1)
                    .map(|v| v.split(',').map(|s| s.trim().to_string()).collect());
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other}");
                i += 1;
            }
        }
    }
    options
}

fn wants(options: &Options, key: &str) -> bool {
    match &options.only {
        None => true,
        Some(keys) => keys.iter().any(|k| k == key),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("sweep") {
        run_sweep_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("scenarios") {
        run_scenarios_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("vantage") {
        run_vantage_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("scale") {
        run_scale_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("stream") {
        run_stream_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("estimators") {
        run_estimators_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("crawl") {
        run_crawl_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("export") {
        run_export_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("analyze") {
        run_analyze_command(&args[1..]);
        return;
    }
    if args.first().map(String::as_str) == Some("serve") {
        run_serve_command(&args[1..]);
        return;
    }
    let options = parse_args();
    println!("# Reproduction harness — scale {}, seed {}\n", options.scale, options.seed);

    let mut campaigns: HashMap<&'static str, MeasurementCampaign> = HashMap::new();
    let mut campaign = |period: MeasurementPeriod, options: &Options| -> MeasurementCampaign {
        campaigns
            .entry(period.label())
            .or_insert_with(|| run_period(period, options.scale, options.seed))
            .clone()
    };

    if wants(&options, "table1") {
        table1();
    }
    if wants(&options, "table2") {
        table2(&mut campaign, &options);
    }
    if wants(&options, "fig2") {
        fig2(&mut campaign, &options);
    }
    if wants(&options, "fig3") || wants(&options, "fig4") || wants(&options, "table3") {
        metadata_section(&mut campaign, &options);
    }
    if wants(&options, "fig5") {
        fig5(&mut campaign, &options);
    }
    if wants(&options, "fig6") {
        fig6(&options);
    }
    if wants(&options, "fig7") {
        fig7(&mut campaign, &options);
    }
    if wants(&options, "table4") || wants(&options, "ipgroups") {
        network_size(&mut campaign, &options);
    }
}

fn table1() {
    println!("## Table I — measurement period overview\n");
    let rows: Vec<Vec<String>> = MeasurementPeriod::ALL
        .iter()
        .map(|period| {
            let scenario = Scenario::new(*period);
            let go = period
                .go_ipfs()
                .map(|(role, limits)| format!("{role} ({}/{})", limits.low_water, limits.high_water))
                .unwrap_or_else(|| "-".into());
            let hydra = period
                .hydra()
                .map(|(heads, limits)| format!("{heads} heads ({}/{})", limits.low_water, limits.high_water))
                .unwrap_or_else(|| "-".into());
            vec![
                period.label().to_string(),
                format!("{}", period.duration()),
                go,
                hydra,
                format!("{} observers", scenario.observers().len()),
            ]
        })
        .collect();
    println!(
        "{}",
        report::text_table(&["Period", "Duration", "go-ipfs", "Hydra", "Deployed"], &rows)
    );
}

fn table2(
    campaign: &mut impl FnMut(MeasurementPeriod, &Options) -> MeasurementCampaign,
    options: &Options,
) {
    println!("## Table II — connection statistics\n");
    let mut rows = Vec::new();
    for period in [
        MeasurementPeriod::P0,
        MeasurementPeriod::P1,
        MeasurementPeriod::P2,
        MeasurementPeriod::P3,
    ] {
        let campaign = campaign(period, options);
        for dataset in campaign.passive_datasets() {
            let stats = connection_stats(dataset);
            let dirs = direction_stats(dataset);
            rows.push(vec![
                period.label().into(),
                dataset.client.clone(),
                "All".into(),
                report::count(stats.all_sum),
                report::secs(stats.all_avg_secs),
                report::secs(stats.all_median_secs),
                format!("{}/{}", report::count(dirs.inbound), report::count(dirs.outbound)),
            ]);
            rows.push(vec![
                period.label().into(),
                dataset.client.clone(),
                "Peer".into(),
                report::count(stats.peer_sum),
                report::secs(stats.peer_avg_secs),
                report::secs(stats.peer_median_secs),
                String::new(),
            ]);
        }
    }
    println!(
        "{}",
        report::text_table(
            &["Period", "Client", "Type", "Sum", "Avg [s]", "Median [s]", "in/out"],
            &rows
        )
    );
}

fn fig2(
    campaign: &mut impl FnMut(MeasurementPeriod, &Options) -> MeasurementCampaign,
    options: &Options,
) {
    println!("## Fig. 2 — passive vs. active measurement horizon\n");
    let mut rows = Vec::new();
    for period in [
        MeasurementPeriod::P0,
        MeasurementPeriod::P1,
        MeasurementPeriod::P2,
        MeasurementPeriod::P3,
        MeasurementPeriod::P4,
    ] {
        let campaign = campaign(period, options);
        let comparison = horizon_comparison(&campaign);
        for entry in &comparison.passive {
            rows.push(vec![
                comparison.period.clone(),
                entry.client.clone(),
                report::count(entry.dht_server_pids),
                report::count(entry.total_pids),
            ]);
        }
        rows.push(vec![
            comparison.period.clone(),
            "crawler (min..max)".into(),
            format!("{}..{}", comparison.crawler.min_servers, comparison.crawler.max_servers),
            report::count(comparison.crawler.distinct_servers),
        ]);
    }
    println!(
        "{}",
        report::text_table(&["Period", "Client", "DHT-Server PIDs", "Total PIDs"], &rows)
    );
}

fn metadata_section(
    campaign: &mut impl FnMut(MeasurementPeriod, &Options) -> MeasurementCampaign,
    options: &Options,
) {
    let campaign = campaign(MeasurementPeriod::P4, options);
    let dataset = campaign.primary();

    println!("## Fig. 3 — agent versions\n");
    let threshold = (100.0 * options.scale).ceil() as u64;
    let agents = analysis::agent_histogram(dataset, threshold);
    println!("{}", report::bar_chart(&agents.sorted_by_count(), 40));
    let breakdown = metadata::agent_breakdown(dataset);
    println!(
        "go-ipfs {} | hydra {} | crawler {} | other {} | missing {} | distinct agents {} | kad {}\n",
        report::count(breakdown.go_ipfs),
        report::count(breakdown.hydra),
        report::count(breakdown.crawler),
        report::count(breakdown.other),
        report::count(breakdown.missing),
        breakdown.distinct_agents,
        report::count(breakdown.kad_supporters),
    );

    println!("## Fig. 4 — supported protocols\n");
    let protocol_threshold = (300.0 * options.scale).ceil() as u64;
    let protocols = analysis::protocol_histogram(dataset, protocol_threshold);
    println!("{}", report::bar_chart(&protocols.sorted_by_count(), 40));

    println!("## Table III — go-ipfs version changes\n");
    let versions = version_changes(dataset);
    let rows = vec![
        vec!["Upgrade".into(), versions.upgrades.to_string(), "main-main".into(), versions.main_to_main.to_string()],
        vec!["Downgrade".into(), versions.downgrades.to_string(), "dirty-main".into(), versions.dirty_to_main.to_string()],
        vec!["Change".into(), versions.changes.to_string(), "main-dirty".into(), versions.main_to_dirty.to_string()],
        vec!["(peers)".into(), versions.peers_with_changes.to_string(), "dirty-dirty".into(), versions.dirty_to_dirty.to_string()],
    ];
    println!("{}", report::text_table(&["Version", "#", "Type", "#"], &rows));

    let roles = role_switches(dataset);
    let anomalies = metadata::anomaly_report(dataset);
    println!("role switches: {} peers changed protocol announcements ({} events), {} server->client",
        roles.peers_with_protocol_changes, roles.protocol_change_events, roles.role_switchers);
    println!(
        "anomalies: {} go-ipfs without bitswap ({} with sbptp), {} storm-protocol peers, {} ethereum agents\n",
        anomalies.go_ipfs_without_bitswap,
        anomalies.go_ipfs_with_storm_markers,
        anomalies.storm_protocol_peers,
        anomalies.ethereum_agents
    );
}

fn fig5(
    campaign: &mut impl FnMut(MeasurementPeriod, &Options) -> MeasurementCampaign,
    options: &Options,
) {
    println!("## Fig. 5 — simultaneous connections over the first 24 h\n");
    for period in [
        MeasurementPeriod::P0,
        MeasurementPeriod::P1,
        MeasurementPeriod::P2,
        MeasurementPeriod::P3,
    ] {
        let campaign = campaign(period, options);
        for dataset in campaign.passive_datasets() {
            let timeline = connection_timeline(dataset, SimDuration::from_hours(24));
            println!("### {} / {}", period.label(), dataset.client);
            println!(
                "{}",
                report::timeseries_csv(&timeline.downsample(24), "time_s", "connections")
            );
        }
    }
}

fn fig6(options: &Options) {
    println!("## Fig. 6 — PIDs over time (14-day run)\n");
    // The 14-day run is the most expensive experiment; run it at a quarter of
    // the requested scale to keep the harness fast.
    let scale = (options.scale * 0.25).max(0.002);
    let campaign = run_period(MeasurementPeriod::Extended, scale, options.seed);
    let dataset = campaign.primary();
    let growth = pid_growth(dataset, SimDuration::from_hours(6), SimDuration::from_days(3));
    println!("(scale {scale})");
    println!("{}", report::timeseries_csv(&growth.total_pids.downsample(28), "hours", "total_pids"));
    println!("{}", report::timeseries_csv(&growth.gone_pids.downsample(28), "hours", "gone_3d_pids"));
    println!(
        "final: {} PIDs seen, {} disconnected >3 d and never returned\n",
        growth.final_total(),
        growth.final_gone()
    );
}

fn fig7(
    campaign: &mut impl FnMut(MeasurementPeriod, &Options) -> MeasurementCampaign,
    options: &Options,
) {
    println!("## Fig. 7 — CDFs of connection behaviour (P4)\n");
    let campaign = campaign(MeasurementPeriod::P4, options);
    let dataset = campaign.primary();
    let cdfs = max_duration_cdf(dataset, 30.0);
    let points = Cdf::log_points(30.0, 300_000.0, 2);
    println!("### max connection duration per PID");
    println!("all:\n{}", report::cdf_csv(&cdfs.all, &points, "duration_s"));
    println!("dht-server:\n{}", report::cdf_csv(&cdfs.dht_server, &points, "duration_s"));
    println!("dht-client:\n{}", report::cdf_csv(&cdfs.dht_client, &points, "duration_s"));
    println!(
        "fraction <1h: {:.2}  fraction >24h: {:.2}",
        cdfs.fraction_below(3600.0),
        1.0 - cdfs.fraction_below(24.0 * 3600.0)
    );

    let counts = connection_count_cdf(dataset);
    let count_points = Cdf::log_points(1.0, 10_000.0, 2);
    println!("\n### number of connections per PID");
    println!("{}", report::cdf_csv(&counts, &count_points, "connections"));
    println!(
        "fraction with 1 connection: {:.2}  fraction with >15: {:.2}\n",
        counts.fraction_at_or_below(1.0),
        1.0 - counts.fraction_at_or_below(15.0)
    );
}

fn network_size(
    campaign: &mut impl FnMut(MeasurementPeriod, &Options) -> MeasurementCampaign,
    options: &Options,
) {
    println!("## Section V — network size (P4)\n");
    let campaign = campaign(MeasurementPeriod::P4, options);
    let dataset = campaign.primary();

    let grouping = ip_grouping(dataset);
    println!("### §V-A IP grouping");
    println!(
        "PIDs {} | connected {} | IPs {} | groups {} | singleton groups {} | largest group {}",
        report::count(grouping.total_pids),
        report::count(grouping.connected_pids),
        report::count(grouping.distinct_ips),
        report::count(grouping.groups),
        report::count(grouping.singleton_groups),
        grouping.largest_group
    );

    println!("\n### Table IV — classification");
    let classes = classify_peers(dataset);
    let rows: Vec<Vec<String>> = classes
        .rows
        .iter()
        .map(|(label, total, servers)| vec![label.clone(), report::count(*total), report::count(*servers)])
        .collect();
    println!("{}", report::text_table(&["Class", "Peers", "DHT-Server"], &rows));

    let estimate = network_size_estimate(dataset);
    let fingerprints = fingerprint_groups(dataset);
    println!("### estimates");
    println!(
        "by PIDs {} | by IP groups {} | by fingerprints {} | core lower bound {} | max simultaneous {} | ground truth {}\n",
        report::count(estimate.by_pids),
        report::count(estimate.by_ip_groups),
        report::count(fingerprints.full_fingerprints),
        report::count(estimate.core_lower_bound),
        report::count(estimate.max_simultaneous_connections),
        report::count(campaign.ground_truth.population_size())
    );
}

// ---- the `sweep` subcommand ------------------------------------------------

fn sweep_usage() -> ! {
    eprintln!(
        "usage: repro sweep [--periods P1,P2,...] [--scales 0.01,...] \
         [--seeds N | --seed-list 3,17,...] [--tweaks label=factor,...] \
         [--scenarios baseline,flashcrowd,...] [--vantages 1,3,...] \
         [--base-seed N] [--threads N] [--pretty] [--no-table]"
    );
    std::process::exit(2);
}

fn parse_scenarios(spec: &str) -> Vec<ChurnScenario> {
    spec.split(',')
        .map(|label| {
            ChurnScenario::from_label(label.trim()).unwrap_or_else(|| {
                eprintln!(
                    "unknown scenario {label:?} (expected baseline, diurnal, flashcrowd, \
                     massexit, pidflood, natchurn, sybil, eclipse or poison)"
                );
                std::process::exit(2);
            })
        })
        .collect()
}

fn run_sweep_command(args: &[String]) {
    let mut periods = vec![MeasurementPeriod::P1, MeasurementPeriod::P2];
    let mut scales = vec![0.01];
    let mut seeds: Vec<u64> = (1..=8).collect();
    let mut tweaks = vec![ObserverTweak::default()];
    let mut scenarios = vec![ChurnScenario::Baseline];
    let mut vantages = vec![1usize];
    let mut base_seed: Option<u64> = None;
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| sweep_usage())
        };
        match args[i].as_str() {
            "--periods" => {
                periods = take(i)
                    .split(',')
                    .map(|label| {
                        MeasurementPeriod::from_label(label.trim()).unwrap_or_else(|| {
                            eprintln!("unknown period {label:?} (expected P0..P4 or P14d)");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                i += 2;
            }
            "--scales" => {
                scales = take(i)
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| {
                        eprintln!("invalid scale {s:?}");
                        std::process::exit(2);
                    }))
                    .collect();
                i += 2;
            }
            "--seeds" => {
                let n: u64 = take(i).parse().unwrap_or_else(|_| sweep_usage());
                seeds = (1..=n).collect();
                i += 2;
            }
            "--seed-list" => {
                seeds = take(i)
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| sweep_usage()))
                    .collect();
                i += 2;
            }
            "--tweaks" => {
                tweaks = take(i)
                    .split(',')
                    .map(|spec| {
                        let (label, factor) = spec.split_once('=').unwrap_or((spec, "1.0"));
                        let factor: f64 = factor.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid tweak {spec:?} (expected label=factor)");
                            std::process::exit(2);
                        });
                        ObserverTweak::limits(label.trim(), factor)
                    })
                    .collect();
                i += 2;
            }
            "--scenarios" => {
                scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--vantages" => {
                vantages = take(i)
                    .split(',')
                    .map(|v| v.trim().parse().unwrap_or_else(|_| sweep_usage()))
                    .collect();
                i += 2;
            }
            "--base-seed" => {
                base_seed = Some(take(i).parse().unwrap_or_else(|_| sweep_usage()));
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| sweep_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            _ => sweep_usage(),
        }
    }

    if periods.is_empty() || scales.is_empty() || seeds.is_empty() || tweaks.is_empty()
        || scenarios.is_empty() || vantages.is_empty()
    {
        sweep_usage();
    }

    let mut grid = SweepGrid::new(periods)
        .with_scales(scales)
        .with_seeds(seeds)
        .with_tweaks(tweaks)
        .with_scenarios(scenarios)
        .with_vantages(vantages);
    if let Some(base) = base_seed {
        grid = grid.with_base_seed(base);
    }
    if let Err(problem) = grid.validate() {
        eprintln!("invalid sweep grid: {problem}");
        std::process::exit(2);
    }
    let runner = match threads {
        Some(n) => SweepRunner::new().with_threads(n),
        None => SweepRunner::new(),
    };

    let total = grid.cell_count();
    eprintln!("# sweep: {total} campaigns");
    let started = std::time::Instant::now();
    let done = AtomicUsize::new(0);
    let report = runner.run_with_progress(&grid, |cell| {
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!(
            "[{finished}/{total}] {} {} scale {} seed {} ({}): {} conns, {} pids",
            cell.period, cell.scenario, cell.scale, cell.seed, cell.tweak, cell.connections, cell.pids
        );
    });
    eprintln!("# sweep finished in {:.1?}", started.elapsed());
    if table {
        eprintln!("\n{}", report.summary_table());
    }
    if pretty {
        println!("{}", report.to_json_string_pretty());
    } else {
        println!("{}", report.to_json_string());
    }
}

// ---- the `scale` subcommand ------------------------------------------------

fn scale_usage() -> ! {
    eprintln!(
        "usage: repro scale [--peers N] [--shards N] [--threads N] \
         [--duration-mins M] [--seed N] [--compat-peers N] \
         [--out BENCH_scale.json] [--no-file] \
         [--full-protocol] [--epoch-secs S] [--tp-observers N]"
    );
    eprintln!(
        "  --full-protocol runs one coherent population through the \
         cross-shard mailbox engine instead of independent per-shard \
         simulations, and merges a `true_protocol` row into the report file"
    );
    std::process::exit(2);
}

fn run_scale_command(args: &[String]) {
    use bench::scale::{run_scale_with_progress, ScaleConfig, TrueProtocolConfig};

    let mut cfg = ScaleConfig::default();
    let mut out_path = String::from("BENCH_scale.json");
    let mut write_file = true;
    let mut full_protocol = false;
    let mut peers_given = false;
    let mut epoch_secs: u64 = 60;
    let mut tp_observers: usize = TrueProtocolConfig::default().observers;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| scale_usage())
        };
        match args[i].as_str() {
            "--peers" => {
                cfg.peers = take(i).parse().unwrap_or_else(|_| scale_usage());
                peers_given = true;
                i += 2;
            }
            "--shards" => {
                cfg.shards = take(i).parse().unwrap_or_else(|_| scale_usage());
                i += 2;
            }
            "--threads" => {
                cfg.threads = take(i).parse().unwrap_or_else(|_| scale_usage());
                i += 2;
            }
            "--duration-mins" => {
                let mins: u64 = take(i).parse().unwrap_or_else(|_| scale_usage());
                cfg.duration = simclock::SimDuration::from_mins(mins);
                i += 2;
            }
            "--seed" => {
                cfg.seed = take(i).parse().unwrap_or_else(|_| scale_usage());
                i += 2;
            }
            "--compat-peers" => {
                cfg.compat_peers = take(i).parse().unwrap_or_else(|_| scale_usage());
                i += 2;
            }
            "--out" => {
                out_path = take(i).to_string();
                i += 2;
            }
            "--no-file" => {
                write_file = false;
                i += 1;
            }
            "--full-protocol" => {
                full_protocol = true;
                i += 1;
            }
            "--epoch-secs" => {
                epoch_secs = take(i).parse().unwrap_or_else(|_| scale_usage());
                i += 2;
            }
            "--tp-observers" => {
                tp_observers = take(i).parse().unwrap_or_else(|_| scale_usage());
                i += 2;
            }
            _ => scale_usage(),
        }
    }
    if cfg.peers == 0 || cfg.shards == 0 || cfg.threads == 0 || cfg.compat_peers == 0 {
        scale_usage();
    }
    if full_protocol {
        if epoch_secs == 0 || tp_observers == 0 {
            scale_usage();
        }
        // The classic harness and the true-protocol campaign default to
        // different population sizes; only an explicit --peers overrides.
        let tp_cfg = TrueProtocolConfig {
            peers: if peers_given {
                cfg.peers
            } else {
                TrueProtocolConfig::default().peers
            },
            shards: cfg.shards,
            threads: cfg.threads,
            duration: cfg.duration,
            epoch: simclock::SimDuration::from_secs(epoch_secs),
            seed: cfg.seed,
            observers: tp_observers,
        };
        run_full_protocol_command(&tp_cfg, &out_path, write_file);
        return;
    }

    eprintln!(
        "# scale: {} peers in {} shards on {} threads, {} simulated",
        cfg.peers, cfg.shards, cfg.threads, cfg.duration
    );
    let done = AtomicUsize::new(0);
    let total = cfg.shards;
    let report = run_scale_with_progress(&cfg, |shard| {
        let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
        eprintln!(
            "[{finished}/{total}] shard {} ({} peers): {} events, checksum {:016x}",
            shard.shard,
            shard.peers,
            shard.total_events(),
            shard.checksum
        );
    });
    eprintln!("# {}", report.summary());
    if write_file {
        let mut text = report.full_json().to_string_pretty();
        text.push('\n');
        if let Err(error) = std::fs::write(&out_path, text) {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
        eprintln!("# full report (with timing) written to {out_path}");
    }
    // stdout carries only the deterministic fields, so two runs with
    // different --threads can be compared byte-for-byte.
    println!("{}", report.deterministic_json().to_string_pretty());
}

/// Runs the `--full-protocol` variant: one coherent population through the
/// cross-shard mailbox engine. The `true_protocol` row is merged into the
/// report file (preserving an existing classic report if one is there), and
/// stdout carries only the deterministic fields for byte-comparison.
fn run_full_protocol_command(
    cfg: &bench::scale::TrueProtocolConfig,
    out_path: &str,
    write_file: bool,
) {
    use bench::scale::run_true_protocol;

    eprintln!(
        "# scale --full-protocol: {} peers in {} lock-step shards on {} threads, \
         {} simulated, {} epochs",
        cfg.peers,
        cfg.shards,
        cfg.threads,
        cfg.duration,
        cfg.duration.as_millis() / cfg.epoch.as_millis().max(1)
    );
    let report = run_true_protocol(cfg);
    eprintln!("# {}", report.summary());
    if write_file {
        let mut root = std::fs::read_to_string(out_path)
            .ok()
            .and_then(|text| jsonio::Json::parse(&text).ok())
            .filter(|json| json.as_object().is_some())
            .unwrap_or_else(jsonio::Json::object);
        root.insert("true_protocol", report.full_json());
        let mut text = root.to_string_pretty();
        text.push('\n');
        if let Err(error) = std::fs::write(out_path, text) {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
        eprintln!("# true_protocol row merged into {out_path}");
    }
    println!("{}", report.deterministic_json().to_string_pretty());
}

// ---- the `stream` subcommand -----------------------------------------------

fn stream_usage() -> ! {
    eprintln!(
        "usage: repro stream [--period P4] [--scale 0.005] [--seed N] \
         [--window-hours 6] [--vantages 1] \
         [--scenarios baseline,diurnal,flashcrowd,massexit,pidflood,natchurn] \
         [--threads N] [--pretty] [--no-table]\n\
         \n\
         long-horizon memory bench:\n\
         repro stream --long-horizon [--horizons 1,3,7] [--bench-scale 0.0025] \
         [--window-hours 6] [--seed N] [--out BENCH_stream.json] [--no-file]"
    );
    std::process::exit(2);
}

fn run_stream_command(args: &[String]) {
    if args.iter().any(|a| a == "--long-horizon") {
        run_stream_bench_command(args);
        return;
    }
    let mut period = MeasurementPeriod::P4;
    let mut scale: f64 = 0.005;
    let mut seed = 1975u64;
    let mut window_hours = 6u64;
    let mut vantages = 1usize;
    let mut scenarios = vec![ChurnScenario::Baseline];
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| stream_usage())
        };
        match args[i].as_str() {
            "--period" => {
                period = MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| {
                    eprintln!("unknown period {:?} (expected P0..P4 or P14d)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--scale" => {
                scale = take(i).parse().unwrap_or_else(|_| stream_usage());
                i += 2;
            }
            "--seed" => {
                seed = take(i).parse().unwrap_or_else(|_| stream_usage());
                i += 2;
            }
            "--window-hours" => {
                window_hours = take(i).parse().unwrap_or_else(|_| stream_usage());
                i += 2;
            }
            "--vantages" => {
                vantages = take(i).parse().unwrap_or_else(|_| stream_usage());
                i += 2;
            }
            "--scenarios" => {
                scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| stream_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            _ => stream_usage(),
        }
    }
    if scenarios.is_empty() || vantages == 0 || window_hours == 0 || !scale.is_finite() || scale <= 0.0 {
        stream_usage();
    }

    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    let window = SimDuration::from_hours(window_hours);
    eprintln!(
        "# stream: {period} at scale {scale}, seed {seed}, {window_hours} h windows, \
         {vantages} vantage(s), scenarios {}",
        scenarios
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(",")
    );
    let started = std::time::Instant::now();
    let campaigns = measurement::run_stream_suite(
        period, scale, seed, vantages, window, &scenarios, threads,
    );
    let report = analysis::stream_report(&campaigns);
    eprintln!("# stream finished in {:.1?}", started.elapsed());
    if table {
        eprintln!("\n{}", report.summary_table());
    }
    if pretty {
        println!("{}", report.to_json_string_pretty());
    } else {
        println!("{}", report.to_json_string());
    }
}

fn run_stream_bench_command(args: &[String]) {
    use bench::stream::{run_stream_bench_with_progress, StreamBenchConfig};

    let mut cfg = StreamBenchConfig::default();
    let mut out_path = String::from("BENCH_stream.json");
    let mut write_file = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| stream_usage())
        };
        match args[i].as_str() {
            "--long-horizon" => {
                i += 1;
            }
            "--horizons" => {
                cfg.horizons_days = take(i)
                    .split(',')
                    .map(|v| v.trim().parse().unwrap_or_else(|_| stream_usage()))
                    .collect();
                i += 2;
            }
            "--bench-scale" => {
                cfg.scale = take(i).parse().unwrap_or_else(|_| stream_usage());
                i += 2;
            }
            "--window-hours" => {
                let hours: u64 = take(i).parse().unwrap_or_else(|_| stream_usage());
                cfg.window = SimDuration::from_hours(hours);
                i += 2;
            }
            "--seed" => {
                cfg.seed = take(i).parse().unwrap_or_else(|_| stream_usage());
                i += 2;
            }
            "--out" => {
                out_path = take(i).to_string();
                i += 2;
            }
            "--no-file" => {
                write_file = false;
                i += 1;
            }
            _ => stream_usage(),
        }
    }
    if cfg.horizons_days.is_empty() || cfg.window.is_zero() || !cfg.scale.is_finite() || cfg.scale <= 0.0 {
        stream_usage();
    }

    eprintln!(
        "# stream --long-horizon: Extended at scale {}, horizons {:?} days, {} windows",
        cfg.scale, cfg.horizons_days, cfg.window
    );
    let report = run_stream_bench_with_progress(&cfg, |horizon| {
        eprintln!(
            "[{} days] {} conns, {} pids: batch {} B vs stream exact {} B ({:.1}x) / bucketed {} B",
            horizon.days,
            horizon.connections,
            horizon.pids,
            horizon.batch_bytes,
            horizon.exact_peak_bytes,
            horizon.exact_ratio(),
            horizon.bucketed_peak_bytes
        );
    });
    eprintln!("# {}", report.summary());
    if write_file {
        let mut text = report.full_json().to_string_pretty();
        text.push('\n');
        if let Err(error) = std::fs::write(&out_path, text) {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
        eprintln!("# full report (with timing) written to {out_path}");
    }
    // stdout carries only the deterministic fields, so runs at different
    // thread counts can be compared byte-for-byte.
    println!("{}", report.deterministic_json().to_string_pretty());
}

// ---- the `estimators` subcommand -------------------------------------------

fn estimators_usage() -> ! {
    eprintln!(
        "usage: repro estimators [--period P4] [--scale 0.005] [--seed N] \
         [--vantages 3] [--replicates 5] [--bootstrap 200] [--window-hours 6] \
         [--scenarios baseline,diurnal,flashcrowd,massexit,pidflood,natchurn] \
         [--threads N] [--pretty] [--no-table] \
         [--out BENCH_estimators.json] [--no-file]"
    );
    std::process::exit(2);
}

fn run_estimators_command(args: &[String]) {
    use bench::estimators::{run_estimators_bench_with_progress, EstimatorsBenchConfig};

    let mut cfg = EstimatorsBenchConfig::default();
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;
    let mut out_path = String::from("BENCH_estimators.json");
    let mut write_file = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| estimators_usage())
        };
        match args[i].as_str() {
            "--period" => {
                cfg.period = MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| {
                    eprintln!("unknown period {:?} (expected P0..P4 or P14d)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--scale" => {
                cfg.scale = take(i).parse().unwrap_or_else(|_| estimators_usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = take(i).parse().unwrap_or_else(|_| estimators_usage());
                i += 2;
            }
            "--vantages" => {
                cfg.vantages = take(i).parse().unwrap_or_else(|_| estimators_usage());
                i += 2;
            }
            "--replicates" => {
                cfg.replicates = take(i).parse().unwrap_or_else(|_| estimators_usage());
                i += 2;
            }
            "--bootstrap" => {
                cfg.bootstrap = take(i).parse().unwrap_or_else(|_| estimators_usage());
                i += 2;
            }
            "--window-hours" => {
                let hours: u64 = take(i).parse().unwrap_or_else(|_| estimators_usage());
                cfg.window = SimDuration::from_hours(hours);
                i += 2;
            }
            "--scenarios" => {
                cfg.scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| estimators_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            "--out" => {
                out_path = take(i).to_string();
                i += 2;
            }
            "--no-file" => {
                write_file = false;
                i += 1;
            }
            _ => estimators_usage(),
        }
    }
    if cfg.scenarios.is_empty() || cfg.vantages == 0 || cfg.replicates == 0
        || cfg.window.is_zero() || !cfg.scale.is_finite() || cfg.scale <= 0.0
    {
        estimators_usage();
    }

    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    eprintln!(
        "# estimators: {} replicates x {} vantage(s) on {} at scale {}, seed {}, \
         {} bootstrap resamples, scenarios {}",
        cfg.replicates,
        cfg.vantages,
        cfg.period,
        cfg.scale,
        cfg.seed,
        cfg.bootstrap,
        cfg.scenarios
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(",")
    );
    let started = std::time::Instant::now();
    let report = run_estimators_bench_with_progress(&cfg, threads, |stage| {
        eprintln!("# {stage}");
    });
    eprintln!("# estimators finished in {:.1?}", started.elapsed());
    eprintln!("# {}", report.summary());
    if table {
        eprintln!("\n{}", report.report.summary_table());
    }
    if write_file {
        let mut text = report.full_json().to_string_pretty();
        text.push('\n');
        if let Err(error) = std::fs::write(&out_path, text) {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
        eprintln!("# full report (with timing) written to {out_path}");
    }
    // stdout carries only the deterministic fields, so runs at different
    // thread counts can be compared byte-for-byte.
    if pretty {
        println!("{}", report.deterministic_json().to_string_pretty());
    } else {
        println!("{}", report.deterministic_json().to_string_compact());
    }
}

// ---- the `crawl` subcommand ------------------------------------------------

fn crawl_usage() -> ! {
    eprintln!(
        "usage: repro crawl [--period P4] [--scale 0.005] [--seed N] \
         [--scenarios baseline,sybil,eclipse,poison] \
         [--threads N] [--pretty] [--no-table] \
         [--out BENCH_crawl.json] [--no-file]"
    );
    std::process::exit(2);
}

fn run_crawl_command(args: &[String]) {
    let mut period = MeasurementPeriod::P4;
    let mut scale: f64 = 0.005;
    let mut seed = 1975u64;
    let mut scenarios = {
        let mut list = vec![ChurnScenario::Baseline];
        list.extend(ChurnScenario::adversaries());
        list
    };
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;
    let mut out_path = String::from("BENCH_crawl.json");
    let mut write_file = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| crawl_usage())
        };
        match args[i].as_str() {
            "--period" => {
                period = MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| {
                    eprintln!("unknown period {:?} (expected P0..P4 or P14d)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--scale" => {
                scale = take(i).parse().unwrap_or_else(|_| crawl_usage());
                i += 2;
            }
            "--seed" => {
                seed = take(i).parse().unwrap_or_else(|_| crawl_usage());
                i += 2;
            }
            "--scenarios" => {
                scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| crawl_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            "--out" => {
                out_path = take(i).to_string();
                i += 2;
            }
            "--no-file" => {
                write_file = false;
                i += 1;
            }
            _ => crawl_usage(),
        }
    }
    if scenarios.is_empty() || !scale.is_finite() || scale <= 0.0 {
        crawl_usage();
    }

    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    eprintln!(
        "# crawl: {} on {period} at scale {scale}, seed {seed}",
        scenarios
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(",")
    );
    let started = std::time::Instant::now();
    let campaigns = run_scenario_suite(period, scale, seed, &scenarios, threads);
    let report = analysis::crawl_disagreement_report(&campaigns);
    let elapsed = started.elapsed();
    eprintln!("# crawl finished in {elapsed:.1?}");
    if table {
        eprintln!("\n{}", report.summary_table());
    }
    if write_file {
        let mut full = jsonio::Json::object();
        full.insert("elapsed_secs", elapsed.as_secs_f64());
        full.insert("report", report.to_json());
        let mut text = full.to_string_pretty();
        text.push('\n');
        if let Err(error) = std::fs::write(&out_path, text) {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
        eprintln!("# full report (with timing) written to {out_path}");
    }
    // stdout carries only deterministic fields, so runs at different thread
    // counts can be compared byte-for-byte.
    if pretty {
        println!("{}", report.to_json_string_pretty());
    } else {
        println!("{}", report.to_json_string());
    }
}

// ---- the `export` / `analyze` subcommands ----------------------------------

fn export_usage() -> ! {
    eprintln!(
        "usage: repro export --dir DIR [--period P4] [--scale 0.005] [--seed N] \
         [--scenarios baseline,diurnal,flashcrowd,massexit,pidflood,natchurn] \
         [--threads N] [--pretty] [--no-table]"
    );
    std::process::exit(2);
}

fn run_export_command(args: &[String]) {
    let mut dir: Option<String> = None;
    let mut period = MeasurementPeriod::P4;
    let mut scale: f64 = 0.005;
    let mut seed = 1975u64;
    let mut scenarios = ChurnScenario::all();
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| export_usage())
        };
        match args[i].as_str() {
            "--dir" => {
                dir = Some(take(i).to_string());
                i += 2;
            }
            "--period" => {
                period = MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| {
                    eprintln!("unknown period {:?} (expected P0..P4 or P14d)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--scale" => {
                scale = take(i).parse().unwrap_or_else(|_| export_usage());
                i += 2;
            }
            "--seed" => {
                seed = take(i).parse().unwrap_or_else(|_| export_usage());
                i += 2;
            }
            "--scenarios" => {
                scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| export_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            _ => export_usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| export_usage());
    if scenarios.is_empty() || !scale.is_finite() || scale <= 0.0 {
        export_usage();
    }

    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    eprintln!(
        "# export: {} on {period} at scale {scale}, seed {seed} -> {dir}/",
        scenarios
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(",")
    );
    let started = std::time::Instant::now();
    let cells = measurement::export_suite(period, scale, seed, &scenarios, threads);
    let mut campaigns = Vec::with_capacity(cells.len());
    let mut archives = Vec::with_capacity(cells.len());
    let mut sim_secs = 0.0;
    let mut encode_secs = 0.0;
    for cell in cells {
        sim_secs += cell.sim_secs;
        encode_secs += cell.encode_secs;
        campaigns.push(cell.campaign);
        archives.push((cell.churn, cell.archive, cell.events));
    }
    let report = analysis::robustness_report(&campaigns);
    // The full simulate + serialise + ingest + report wall time: the baseline
    // that `repro analyze` measures its re-analysis speedup against.
    let direct_secs = started.elapsed().as_secs_f64();

    if let Err(error) = std::fs::create_dir_all(&dir) {
        eprintln!("failed to create {dir}: {error}");
        std::process::exit(1);
    }
    let mut manifest_cells = jsonio::Json::array();
    let mut total_bytes = 0usize;
    let mut rows = Vec::new();
    for (index, (churn, archive, events)) in archives.iter().enumerate() {
        let file = format!("cell-{index:02}-{}.obsar", churn.label());
        let path = format!("{dir}/{file}");
        if let Err(error) = std::fs::write(&path, archive) {
            eprintln!("failed to write {path}: {error}");
            std::process::exit(1);
        }
        total_bytes += archive.len();
        let mut cell = jsonio::Json::object();
        cell.insert("file", file.as_str());
        cell.insert("scenario", churn.label());
        cell.insert("events", *events as u64);
        cell.insert("bytes", archive.len() as u64);
        cell.insert("checksum", netsim::archive::fnv1a(archive));
        manifest_cells.push(cell);
        rows.push(vec![
            churn.label().to_string(),
            file,
            report::count(*events),
            format!("{}", archive.len()),
            format!(
                "{:.1}",
                archive.len() as f64 / (*events).max(1) as f64
            ),
        ]);
    }
    let mut manifest = jsonio::Json::object();
    manifest.insert("format_version", netsim::archive::FORMAT_VERSION as u64);
    manifest.insert("period", period.label());
    manifest.insert("scale", scale);
    manifest.insert("seed", seed);
    manifest.insert("cells", manifest_cells);
    manifest.insert("direct_secs", direct_secs);
    manifest.insert("sim_secs", sim_secs);
    manifest.insert("encode_secs", encode_secs);
    let manifest_path = format!("{dir}/manifest.json");
    let mut text = manifest.to_string_pretty();
    text.push('\n');
    if let Err(error) = std::fs::write(&manifest_path, text) {
        eprintln!("failed to write {manifest_path}: {error}");
        std::process::exit(1);
    }

    eprintln!(
        "# export finished in {:.1?}: {} cells, {} bytes archived",
        started.elapsed(),
        archives.len(),
        total_bytes
    );
    if table {
        eprintln!(
            "\n{}",
            report::text_table(
                &["Scenario", "File", "Events", "Bytes", "B/event"],
                &rows
            )
        );
        eprintln!("{}", report.summary_table());
    }
    // stdout is the robustness report of the direct (simulate + ingest) path —
    // byte-identical to `repro scenarios` with the same configuration, and the
    // reference `repro analyze` must reproduce from the archives alone.
    if pretty {
        println!("{}", report.to_json_string_pretty());
    } else {
        println!("{}", report.to_json_string());
    }
}

fn analyze_usage() -> ! {
    eprintln!(
        "usage: repro analyze --dir DIR [--threads N] [--pretty] [--no-table] \
         [--bench-out BENCH_archive.json] [--no-file]"
    );
    std::process::exit(2);
}

/// Exits loudly when the manifest is missing a field — a malformed manifest
/// must never silently degrade into a partial re-analysis.
fn manifest_field<'a>(manifest: &'a jsonio::Json, key: &str) -> &'a jsonio::Json {
    manifest.get(key).unwrap_or_else(|| {
        eprintln!("manifest.json is missing the {key:?} field");
        std::process::exit(1);
    })
}

fn run_analyze_command(args: &[String]) {
    let mut dir: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;
    let mut bench_out = String::from("BENCH_archive.json");
    let mut write_file = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| analyze_usage())
        };
        match args[i].as_str() {
            "--dir" => {
                dir = Some(take(i).to_string());
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| analyze_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            "--bench-out" => {
                bench_out = take(i).to_string();
                i += 2;
            }
            "--no-file" => {
                write_file = false;
                i += 1;
            }
            _ => analyze_usage(),
        }
    }
    let dir = dir.unwrap_or_else(|| analyze_usage());
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });

    let manifest_path = format!("{dir}/manifest.json");
    let manifest_text = std::fs::read_to_string(&manifest_path).unwrap_or_else(|error| {
        eprintln!("failed to read {manifest_path}: {error}");
        std::process::exit(1);
    });
    let manifest = jsonio::Json::parse(&manifest_text).unwrap_or_else(|error| {
        eprintln!("failed to parse {manifest_path}: {error}");
        std::process::exit(1);
    });
    let format_version = manifest_field(&manifest, "format_version")
        .as_u64()
        .unwrap_or(0);
    if format_version != netsim::archive::FORMAT_VERSION as u64 {
        eprintln!(
            "manifest format version {format_version} is not the supported version {}",
            netsim::archive::FORMAT_VERSION
        );
        std::process::exit(1);
    }
    let manifest_cells = manifest_field(&manifest, "cells").as_array().unwrap_or_else(|| {
        eprintln!("manifest.json \"cells\" is not an array");
        std::process::exit(1);
    });
    let direct_secs = manifest_field(&manifest, "direct_secs").as_f64().unwrap_or(0.0);
    let sim_secs = manifest_field(&manifest, "sim_secs").as_f64().unwrap_or(0.0);
    let encode_secs = manifest_field(&manifest, "encode_secs").as_f64().unwrap_or(0.0);

    eprintln!(
        "# analyze: {} cells from {dir}/ ({} archived at scale {}, seed {})",
        manifest_cells.len(),
        manifest_field(&manifest, "period").as_str().unwrap_or("?"),
        manifest_field(&manifest, "scale").as_f64().unwrap_or(f64::NAN),
        manifest_field(&manifest, "seed").as_u64().unwrap_or(0),
    );

    let started = std::time::Instant::now();
    let mut archives = Vec::with_capacity(manifest_cells.len());
    for cell in manifest_cells {
        let file = cell.get("file").and_then(jsonio::Json::as_str).unwrap_or_else(|| {
            eprintln!("manifest cell is missing the \"file\" field");
            std::process::exit(1);
        });
        let path = format!("{dir}/{file}");
        let bytes = std::fs::read(&path).unwrap_or_else(|error| {
            eprintln!("failed to read {path}: {error}");
            std::process::exit(1);
        });
        if let Some(expected) = cell.get("checksum").and_then(jsonio::Json::as_u64) {
            let actual = netsim::archive::fnv1a(&bytes);
            if actual != expected {
                eprintln!(
                    "{path} does not match its manifest checksum \
                     (expected {expected:016x}, got {actual:016x})"
                );
                std::process::exit(1);
            }
        }
        archives.push(bytes);
    }
    let read_secs = started.elapsed().as_secs_f64();

    let cells = measurement::analyze_suite(&archives, threads).unwrap_or_else(|error| {
        eprintln!("failed to decode archives: {error}");
        std::process::exit(1);
    });
    let mut campaigns = Vec::with_capacity(cells.len());
    let mut events = 0usize;
    let mut archive_bytes = 0usize;
    let mut resident_bytes = 0usize;
    let mut decode_secs = 0.0;
    for cell in cells {
        events += cell.events;
        archive_bytes += cell.archive_bytes;
        resident_bytes += cell.resident_bytes;
        decode_secs += cell.decode_secs;
        campaigns.push(cell.campaign);
    }
    let report = analysis::robustness_report(&campaigns);
    // Everything between reading the first archive byte and having the report
    // in hand — the quantity the speedup claim is about.
    let reanalyze_secs = started.elapsed().as_secs_f64();

    let per_event = |bytes: usize| bytes as f64 / events.max(1) as f64;
    let throughput = |bytes: usize, secs: f64| {
        if secs > 0.0 { bytes as f64 / secs / 1e6 } else { 0.0 }
    };
    let speedup = if reanalyze_secs > 0.0 { direct_secs / reanalyze_secs } else { 0.0 };
    // Simulation vs archive decode: the cost of re-obtaining the
    // SimulationOutput either way. The ingestion both paths share is
    // excluded, so this is the number that keeps growing with campaign size.
    let output_secs = read_secs + decode_secs;
    let decode_speedup = if output_secs > 0.0 { sim_secs / output_secs } else { 0.0 };

    eprintln!(
        "# analyze finished in {:.1?}: {} events from {} archive bytes \
         ({:.1} B/event archived vs {:.1} B/event resident)",
        started.elapsed(),
        events,
        archive_bytes,
        per_event(archive_bytes),
        per_event(resident_bytes)
    );
    eprintln!(
        "# re-analysis {reanalyze_secs:.3} s vs direct {direct_secs:.3} s -> {speedup:.1}x; \
         decode {output_secs:.3} s vs simulate {sim_secs:.3} s -> {decode_speedup:.1}x \
         (write {:.1} MB/s, read {:.1} MB/s)",
        throughput(archive_bytes, encode_secs),
        throughput(archive_bytes, decode_secs)
    );
    if table {
        eprintln!("\n{}", report.summary_table());
    }
    if write_file {
        let mut bench = jsonio::Json::object();
        bench.insert("cells", campaigns.len() as u64);
        bench.insert("events", events as u64);
        bench.insert("archive_bytes", archive_bytes as u64);
        bench.insert("archive_bytes_per_event", per_event(archive_bytes));
        bench.insert("in_memory_bytes", resident_bytes as u64);
        bench.insert("in_memory_bytes_per_event", per_event(resident_bytes));
        bench.insert("write_mb_per_sec", throughput(archive_bytes, encode_secs));
        bench.insert("read_mb_per_sec", throughput(archive_bytes, decode_secs));
        bench.insert("read_secs", read_secs);
        bench.insert("decode_secs", decode_secs);
        bench.insert("reanalyze_secs", reanalyze_secs);
        bench.insert("direct_secs", direct_secs);
        bench.insert("sim_secs", sim_secs);
        bench.insert("reanalyze_speedup", speedup);
        bench.insert("decode_speedup", decode_speedup);
        let mut text = bench.to_string_pretty();
        text.push('\n');
        if let Err(error) = std::fs::write(&bench_out, text) {
            eprintln!("failed to write {bench_out}: {error}");
            std::process::exit(1);
        }
        eprintln!("# archive bench (with timing) written to {bench_out}");
    }
    // stdout is the robustness report reconstructed from the archives alone —
    // byte-identical to the `repro export` / `repro scenarios` output for the
    // same configuration, with zero re-simulation.
    if pretty {
        println!("{}", report.to_json_string_pretty());
    } else {
        println!("{}", report.to_json_string());
    }
}

// ---- the `vantage` subcommand ----------------------------------------------

fn vantage_usage() -> ! {
    eprintln!(
        "usage: repro vantage [--period P4] [--scale 0.005] [--seed N] \
         [--vantages 3] \
         [--scenarios baseline,diurnal,flashcrowd,massexit,pidflood,natchurn] \
         [--threads N] [--pretty] [--no-table]"
    );
    std::process::exit(2);
}

fn run_vantage_command(args: &[String]) {
    let mut period = MeasurementPeriod::P4;
    let mut scale: f64 = 0.005;
    let mut seed = 1975u64;
    let mut vantages = 3usize;
    let mut scenarios = vec![ChurnScenario::Baseline];
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| vantage_usage())
        };
        match args[i].as_str() {
            "--period" => {
                period = MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| {
                    eprintln!("unknown period {:?} (expected P0..P4 or P14d)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--scale" => {
                scale = take(i).parse().unwrap_or_else(|_| vantage_usage());
                i += 2;
            }
            "--seed" => {
                seed = take(i).parse().unwrap_or_else(|_| vantage_usage());
                i += 2;
            }
            "--vantages" => {
                vantages = take(i).parse().unwrap_or_else(|_| vantage_usage());
                i += 2;
            }
            "--scenarios" => {
                scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| vantage_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            _ => vantage_usage(),
        }
    }
    if scenarios.is_empty() || vantages == 0 || !scale.is_finite() || scale <= 0.0 {
        vantage_usage();
    }

    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    eprintln!(
        "# vantage: {vantages} vantage points on {period} at scale {scale}, seed {seed}, scenarios {}",
        scenarios
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(",")
    );
    let started = std::time::Instant::now();
    let campaigns = run_vantage_suite(period, scale, seed, vantages, &scenarios, threads);
    let report = analysis::vantage_report(&campaigns);
    eprintln!("# vantage finished in {:.1?}", started.elapsed());
    if table {
        eprintln!("\n{}", report.summary_table());
    }
    if pretty {
        println!("{}", report.to_json_string_pretty());
    } else {
        println!("{}", report.to_json_string());
    }
}

// ---- the `scenarios` subcommand --------------------------------------------

fn scenarios_usage() -> ! {
    eprintln!(
        "usage: repro scenarios [--period P4] [--scale 0.005] [--seed N] \
         [--scenarios baseline,diurnal,flashcrowd,massexit,pidflood,natchurn] \
         [--threads N] [--pretty] [--no-table]"
    );
    std::process::exit(2);
}

fn run_scenarios_command(args: &[String]) {
    let mut period = MeasurementPeriod::P4;
    let mut scale: f64 = 0.005;
    let mut seed = 1975u64;
    let mut scenarios = ChurnScenario::all();
    let mut threads: Option<usize> = None;
    let mut pretty = false;
    let mut table = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| scenarios_usage())
        };
        match args[i].as_str() {
            "--period" => {
                period = MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| {
                    eprintln!("unknown period {:?} (expected P0..P4 or P14d)", args[i + 1]);
                    std::process::exit(2);
                });
                i += 2;
            }
            "--scale" => {
                scale = take(i).parse().unwrap_or_else(|_| scenarios_usage());
                i += 2;
            }
            "--seed" => {
                seed = take(i).parse().unwrap_or_else(|_| scenarios_usage());
                i += 2;
            }
            "--scenarios" => {
                scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--threads" => {
                threads = Some(take(i).parse().unwrap_or_else(|_| scenarios_usage()));
                i += 2;
            }
            "--pretty" => {
                pretty = true;
                i += 1;
            }
            "--no-table" => {
                table = false;
                i += 1;
            }
            _ => scenarios_usage(),
        }
    }
    if scenarios.is_empty() || !scale.is_finite() || scale <= 0.0 {
        scenarios_usage();
    }

    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    });
    eprintln!(
        "# scenarios: {} on {period} at scale {scale}, seed {seed}",
        scenarios
            .iter()
            .map(|s| s.label())
            .collect::<Vec<_>>()
            .join(",")
    );
    let started = std::time::Instant::now();
    let campaigns = run_scenario_suite(period, scale, seed, &scenarios, threads);
    let report = analysis::robustness_report(&campaigns);
    eprintln!("# scenarios finished in {:.1?}", started.elapsed());
    if table {
        eprintln!("\n{}", report.summary_table());
    }
    if pretty {
        println!("{}", report.to_json_string_pretty());
    } else {
        println!("{}", report.to_json_string());
    }
}

// ---- the `serve` subcommand ------------------------------------------------

fn serve_usage() -> ! {
    eprintln!(
        "usage:\n\
         repro serve --listen SOCK [--checkpoint FILE] [--checkpoint-every N] [--restore FILE]\n\
         repro serve --drive SOCK [--period P2] [--scale 0.005] [--seed N] [--window-hours 6] \
         [--scenarios baseline,...] [--batch-rows 512] [--resume] [--max-batches N] [--shutdown]\n\
         repro serve --reference [--period P2] [--scale 0.005] [--seed N] [--window-hours 6] \
         [--scenarios baseline,...]\n\
         repro serve --bench [--tenants 1000] [--events 240] [--batch-rows 48] [--queries 1000] \
         [--seed N] [--out BENCH_serve.json] [--no-file]"
    );
    std::process::exit(2);
}

struct ServeSimFlags {
    period: MeasurementPeriod,
    scale: f64,
    seed: u64,
    window_hours: u64,
    scenarios: Vec<ChurnScenario>,
}

impl ServeSimFlags {
    fn feeds(&self) -> Vec<bench::serve::ServeFeed> {
        bench::serve::campaign_feeds(
            self.period,
            self.scale,
            self.seed,
            SimDuration::from_hours(self.window_hours),
            &self.scenarios,
        )
    }
}

fn run_serve_command(args: &[String]) {
    if args.iter().any(|a| a == "--listen") {
        run_serve_daemon(args);
    } else if args.iter().any(|a| a == "--drive") {
        run_serve_drive(args);
    } else if args.iter().any(|a| a == "--reference") {
        run_serve_reference(args);
    } else if args.iter().any(|a| a == "--bench") {
        run_serve_bench_command(args);
    } else {
        serve_usage();
    }
}

fn run_serve_daemon(args: &[String]) {
    use measurement::serve::{ServeOptions, ServeState};

    let mut listen: Option<String> = None;
    let mut checkpoint: Option<String> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut restore: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| serve_usage())
        };
        match args[i].as_str() {
            "--listen" => {
                listen = Some(take(i).to_string());
                i += 2;
            }
            "--checkpoint" => {
                checkpoint = Some(take(i).to_string());
                i += 2;
            }
            "--checkpoint-every" => {
                checkpoint_every = Some(take(i).parse().unwrap_or_else(|_| serve_usage()));
                i += 2;
            }
            "--restore" => {
                restore = Some(take(i).to_string());
                i += 2;
            }
            _ => serve_usage(),
        }
    }
    let listen = listen.unwrap_or_else(|| serve_usage());

    let options = ServeOptions {
        checkpoint_path: checkpoint.map(std::path::PathBuf::from),
        checkpoint_every,
    };
    let state = match restore {
        Some(path) => {
            let bytes = std::fs::read(&path).unwrap_or_else(|error| {
                eprintln!("failed to read checkpoint {path}: {error}");
                std::process::exit(1);
            });
            let state = ServeState::restore(&bytes, analysis::serve_answerer(), options)
                .unwrap_or_else(|error| {
                    eprintln!("failed to restore checkpoint {path}: {error}");
                    std::process::exit(1);
                });
            eprintln!(
                "# serve: restored {} tenant(s), {} event(s) from {path}",
                state.tenant_count(),
                state.events_ingested()
            );
            state
        }
        None => ServeState::new(analysis::serve_answerer(), options),
    };
    eprintln!("# serve: listening on {listen}");
    let shared = std::sync::Arc::new(std::sync::Mutex::new(state));
    if let Err(error) = measurement::serve_unix(std::path::Path::new(&listen), shared) {
        eprintln!("serve failed: {error}");
        std::process::exit(1);
    }
    eprintln!("# serve: shutdown complete");
}

#[cfg(unix)]
fn run_serve_drive(args: &[String]) {
    use bench::serve::{drive_feeds, DriveOptions};

    let mut sock: Option<String> = None;
    let mut sim = ServeSimFlags {
        period: MeasurementPeriod::P2,
        scale: 0.005,
        seed: 1975,
        window_hours: 6,
        scenarios: vec![ChurnScenario::Baseline],
    };
    let mut options = DriveOptions {
        batch_rows: 512,
        resume: false,
        max_batches: None,
        shutdown: false,
    };

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| serve_usage())
        };
        match args[i].as_str() {
            "--drive" => {
                sock = Some(take(i).to_string());
                i += 2;
            }
            "--period" => {
                sim.period =
                    MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| serve_usage());
                i += 2;
            }
            "--scale" => {
                sim.scale = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--seed" => {
                sim.seed = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--window-hours" => {
                sim.window_hours = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--scenarios" => {
                sim.scenarios = parse_scenarios(take(i));
                i += 2;
            }
            "--batch-rows" => {
                options.batch_rows = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--max-batches" => {
                options.max_batches = Some(take(i).parse().unwrap_or_else(|_| serve_usage()));
                i += 2;
            }
            "--resume" => {
                options.resume = true;
                i += 1;
            }
            "--shutdown" => {
                options.shutdown = true;
                i += 1;
            }
            _ => serve_usage(),
        }
    }
    let sock = sock.unwrap_or_else(|| serve_usage());
    if sim.scenarios.is_empty() || sim.window_hours == 0 || options.batch_rows == 0 {
        serve_usage();
    }

    eprintln!(
        "# serve --drive: {} on {} at scale {}, seed {}",
        sock,
        sim.period,
        sim.scale,
        sim.seed
    );
    let feeds = sim.feeds();
    eprintln!("# serve --drive: {} feed(s) built, streaming", feeds.len());
    let mut stream = std::os::unix::net::UnixStream::connect(&sock).unwrap_or_else(|error| {
        eprintln!("failed to connect to {sock}: {error}");
        std::process::exit(1);
    });
    let answers = drive_feeds(&mut stream, &feeds, &options).unwrap_or_else(|error| {
        eprintln!("drive failed: {error}");
        std::process::exit(1);
    });
    if options.max_batches.is_some() {
        eprintln!("# serve --drive: partial ingest done (no finish sent)");
    } else {
        println!("{}", answers.to_string_pretty());
    }
}

#[cfg(not(unix))]
fn run_serve_drive(_args: &[String]) {
    eprintln!("serve --drive requires unix-domain sockets");
    std::process::exit(1);
}

fn run_serve_reference(args: &[String]) {
    let mut sim = ServeSimFlags {
        period: MeasurementPeriod::P2,
        scale: 0.005,
        seed: 1975,
        window_hours: 6,
        scenarios: vec![ChurnScenario::Baseline],
    };

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| serve_usage())
        };
        match args[i].as_str() {
            "--reference" => {
                i += 1;
            }
            "--period" => {
                sim.period =
                    MeasurementPeriod::from_label(take(i)).unwrap_or_else(|| serve_usage());
                i += 2;
            }
            "--scale" => {
                sim.scale = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--seed" => {
                sim.seed = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--window-hours" => {
                sim.window_hours = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--scenarios" => {
                sim.scenarios = parse_scenarios(take(i));
                i += 2;
            }
            _ => serve_usage(),
        }
    }
    if sim.scenarios.is_empty() || sim.window_hours == 0 {
        serve_usage();
    }

    eprintln!(
        "# serve --reference: {} at scale {}, seed {}",
        sim.period, sim.scale, sim.seed
    );
    let feeds = sim.feeds();
    eprintln!("# serve --reference: {} feed(s) built", feeds.len());
    println!("{}", bench::serve::reference_answers(&feeds).to_string_pretty());
}

fn run_serve_bench_command(args: &[String]) {
    use bench::serve::{run_serve_bench, ServeBenchConfig};

    let mut cfg = ServeBenchConfig::default();
    let mut out_path = String::from("BENCH_serve.json");
    let mut write_file = true;

    let mut i = 0;
    while i < args.len() {
        let take = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| serve_usage())
        };
        match args[i].as_str() {
            "--bench" => {
                i += 1;
            }
            "--tenants" => {
                cfg.tenants = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--events" => {
                cfg.events_per_tenant = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--batch-rows" => {
                cfg.batch_rows = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--queries" => {
                cfg.queries = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--seed" => {
                cfg.seed = take(i).parse().unwrap_or_else(|_| serve_usage());
                i += 2;
            }
            "--out" => {
                out_path = take(i).to_string();
                i += 2;
            }
            "--no-file" => {
                write_file = false;
                i += 1;
            }
            _ => serve_usage(),
        }
    }
    if cfg.tenants == 0 || cfg.events_per_tenant == 0 || cfg.batch_rows == 0 {
        serve_usage();
    }

    eprintln!(
        "# serve --bench: {} tenants x {} events, {}-row batches, {} queries",
        cfg.tenants, cfg.events_per_tenant, cfg.batch_rows, cfg.queries
    );
    let report = run_serve_bench(&cfg, |round, rounds| {
        eprintln!("# serve --bench: ingest round {round}/{rounds}");
    });
    eprintln!("# {}", report.summary());
    if write_file {
        let mut text = report.full_json().to_string_pretty();
        text.push('\n');
        if let Err(error) = std::fs::write(&out_path, text) {
            eprintln!("failed to write {out_path}: {error}");
            std::process::exit(1);
        }
        eprintln!("# full report (with timing) written to {out_path}");
    }
    // stdout carries only the deterministic fields, so runs at different
    // thread counts can be compared byte-for-byte.
    println!("{}", report.deterministic_json().to_string_pretty());
}
