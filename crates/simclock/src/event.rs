//! Deterministic future-event list.
//!
//! A discrete-event simulation advances by repeatedly popping the earliest
//! scheduled event. [`EventQueue`] wraps a binary heap and guarantees a
//! *deterministic* ordering: events scheduled for the same instant are
//! delivered in insertion order (FIFO), so two simulation runs with the same
//! seed and the same schedule produce identical traces.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with the instant it is scheduled for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires at.
    pub at: SimTime,
    /// Monotonically increasing sequence number used to break ties.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E: Eq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and within a
        // time, the lowest sequence number) is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of future events.
///
/// # Example
///
/// ```
/// use simclock::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(5), "c");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// Events scheduled for an instant earlier than the current clock are
    /// delivered at the current clock instead (the simulation never travels
    /// backwards).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Schedules many events at once.
    ///
    /// Semantically identical to calling [`EventQueue::schedule`] once per
    /// item in iteration order (same past-clamping, same FIFO tie-breaking),
    /// but large batches are heapified in *O(n)* and merged with
    /// [`BinaryHeap::append`]'s size-aware strategy instead of paying
    /// *O(log n)* per push. The simulation engine uses this to schedule the
    /// initial session churn of big populations in bulk.
    ///
    /// # Example
    ///
    /// ```
    /// use simclock::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule_batch((0..1000u64).map(|i| (SimTime::from_secs(1000 - i), i)));
    /// assert_eq!(q.len(), 1000);
    /// assert_eq!(q.pop(), Some((SimTime::from_secs(1), 999)));
    /// ```
    pub fn schedule_batch(&mut self, events: impl IntoIterator<Item = (SimTime, E)>) {
        let batch: Vec<ScheduledEvent<E>> = events
            .into_iter()
            .map(|(at, event)| {
                let seq = self.next_seq;
                self.next_seq += 1;
                ScheduledEvent {
                    at: at.max(self.now),
                    seq,
                    event,
                }
            })
            .collect();
        if batch.len() <= 8 {
            // Small batches: plain pushes beat building a second heap.
            for ev in batch {
                self.heap.push(ev);
            }
        } else {
            let mut incoming = BinaryHeap::from(batch);
            self.heap.append(&mut incoming);
        }
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ScheduledEvent { at, event, .. } = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// Pops the earliest event only if it fires no later than `limit`.
    ///
    /// The clock advances to the event's timestamp when an event is returned
    /// and is left unchanged otherwise.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(ev) if ev.at <= limit => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.at)
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

/// An event scheduled in a [`KeyedEventQueue`]: an instant, a source key and
/// a FIFO sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyedScheduledEvent<E> {
    /// The instant the event fires at.
    pub at: SimTime,
    /// Caller-assigned ordering key, compared after `at` and before `seq`.
    pub key: u64,
    /// Monotonically increasing sequence number used as the final tie-break.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E: Eq> Ord for KeyedScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap inversion, as for `ScheduledEvent`: earliest (at, key, seq)
        // pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for KeyedScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue with an explicit, caller-controlled total order.
///
/// [`EventQueue`] breaks same-instant ties by insertion order, which makes
/// the trace depend on *when* events were scheduled. A [`KeyedEventQueue`]
/// instead orders events by `(at, key, seq)` where `key` is assigned by the
/// caller: two queues that receive the same set of `(at, key, event)`
/// entries pop them in the same order no matter how insertion was batched or
/// interleaved (the insertion-order `seq` only breaks ties between entries
/// with identical `(at, key)`).
///
/// This is the property the cross-shard simulation engine builds on: events
/// drained from inter-shard mailboxes at an epoch boundary and events
/// scheduled causally during the epoch sort into one partition-independent
/// order, because the key encodes the *source entity*, not the insertion
/// site.
#[derive(Debug, Clone)]
pub struct KeyedEventQueue<E> {
    heap: BinaryHeap<KeyedScheduledEvent<E>>,
    /// Staged batch lane: events from [`KeyedEventQueue::schedule_batch`],
    /// sorted *descending* by `(at, key, seq)` so the earliest entry sits at
    /// the back and pops off in *O(1)*. Keeping a sealed mailbox as a sorted
    /// run instead of heapifying it makes the drain cost exactly one sort,
    /// where pushing the same events through the heap would pay a
    /// near-full-depth sift both in and out (mailbox events land in the next
    /// epoch, i.e. ahead of almost everything resident).
    run: Vec<KeyedScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: Eq> Default for KeyedEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> KeyedEventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        KeyedEventQueue {
            heap: BinaryHeap::new(),
            run: Vec::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.run.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.run.is_empty()
    }

    /// Schedules `event` at instant `at` under ordering key `key`.
    ///
    /// As with [`EventQueue::schedule`], instants earlier than the current
    /// clock are clamped to the clock.
    pub fn schedule(&mut self, at: SimTime, key: u64, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(KeyedScheduledEvent { at, key, seq, event });
    }

    /// Schedules many events at once by staging them as a sorted run.
    ///
    /// Semantically identical to calling [`KeyedEventQueue::schedule`] once
    /// per item in iteration order (same past-clamping, same FIFO tie-break
    /// between identical `(at, key)` pairs), but the batch never touches the
    /// heap: it is sorted once by `(at, key, seq)` and kept as a side lane
    /// that [`KeyedEventQueue::pop`] merges with the heap on the fly. Sealed
    /// inter-shard mailboxes drain through exactly this entry point, and the
    /// lane is what makes the drain cheap: mailbox events land in the *next*
    /// epoch — earlier than almost every resident session event — so pushing
    /// them through the heap would sift nearly to the root both on insert and
    /// on pop, while the lane costs one sort and *O(1)* per pop.
    ///
    /// A batch scheduled while a previous run is still partially pending
    /// linearly re-merges the leftover (far-future entries such as redials
    /// carry over a few epochs; the leftover stays small in practice).
    pub fn schedule_batch(&mut self, events: impl IntoIterator<Item = (SimTime, u64, E)>) {
        let mut batch: Vec<KeyedScheduledEvent<E>> = events
            .into_iter()
            .map(|(at, key, event)| {
                let seq = self.next_seq;
                self.next_seq += 1;
                KeyedScheduledEvent {
                    at: at.max(self.now),
                    key,
                    seq,
                    event,
                }
            })
            .collect();
        if batch.len() <= 8 {
            for ev in batch {
                self.heap.push(ev);
            }
            return;
        }
        batch.sort_unstable_by_key(|ev| std::cmp::Reverse((ev.at, ev.key, ev.seq)));
        if self.run.is_empty() {
            self.run = batch;
            return;
        }
        // Merge the leftover of the previous run with the new batch; both are
        // descending by (at, key, seq), so one linear pass keeps the lane
        // sorted (largest entries first, earliest at the back).
        let old = std::mem::take(&mut self.run);
        let mut merged = Vec::with_capacity(old.len() + batch.len());
        let mut leftover = old.into_iter().peekable();
        let mut incoming = batch.into_iter().peekable();
        loop {
            let take_left = match (leftover.peek(), incoming.peek()) {
                (Some(l), Some(r)) => (l.at, l.key, l.seq) >= (r.at, r.key, r.seq),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let side = if take_left { &mut leftover } else { &mut incoming };
            merged.push(side.next().expect("peeked side is non-empty"));
        }
        self.run = merged;
    }

    /// The earliest pending event across the heap and the staged run.
    fn peek_event(&self) -> Option<&KeyedScheduledEvent<E>> {
        match (self.run.last(), self.heap.peek()) {
            (Some(r), Some(h)) => {
                if (r.at, r.key, r.seq) < (h.at, h.key, h.seq) {
                    Some(r)
                } else {
                    Some(h)
                }
            }
            (Some(r), None) => Some(r),
            (None, h) => h,
        }
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, u64, E)> {
        let take_run = match (self.run.last(), self.heap.peek()) {
            (Some(r), Some(h)) => (r.at, r.key, r.seq) < (h.at, h.key, h.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        let KeyedScheduledEvent { at, key, event, .. } = if take_run {
            self.run.pop().expect("run lane checked non-empty")
        } else {
            self.heap.pop()?
        };
        self.now = at;
        Some((at, key, event))
    }

    /// Pops the earliest event only if it fires no later than `limit`
    /// (inclusive).
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, u64, E)> {
        match self.peek_event() {
            Some(ev) if ev.at <= limit => self.pop(),
            _ => None,
        }
    }

    /// Pops the earliest event only if it fires strictly before `limit`.
    ///
    /// The lock-step shard driver processes an epoch `[kE, (k+1)E)` with this
    /// bound: events landing exactly on the boundary belong to the next
    /// epoch, after that epoch's mailbox exchange.
    pub fn pop_before(&mut self, limit: SimTime) -> Option<(SimTime, u64, E)> {
        match self.peek_event() {
            Some(ev) if ev.at < limit => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.peek_event().map(|ev| ev.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(42));
    }

    #[test]
    fn scheduling_in_the_past_is_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(100), "late");
        q.pop();
        q.schedule(SimTime::from_secs(10), "early");
        let (at, ev) = q.pop().unwrap();
        assert_eq!(ev, "early");
        assert_eq!(at, SimTime::from_secs(100));
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop_until(SimTime::from_secs(15)), Some((SimTime::from_secs(10), 1)));
        assert_eq!(q.pop_until(SimTime::from_secs(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(20)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn schedule_batch_matches_sequential_schedules() {
        // Same inputs through schedule() and schedule_batch() must produce
        // identical pop sequences, including FIFO ties and past-clamping.
        let events: Vec<(SimTime, u32)> = (0..500u32)
            .map(|i| (SimTime::from_secs(((i * 7919) % 97) as u64), i))
            .collect();
        let mut sequential = EventQueue::new();
        for (at, ev) in &events {
            sequential.schedule(*at, *ev);
        }
        let mut batched = EventQueue::new();
        batched.schedule_batch(events.iter().copied());
        let a: Vec<_> = std::iter::from_fn(|| sequential.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| batched.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_batch_clamps_past_events_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(100), 0u32);
        q.pop();
        q.schedule_batch((1..20u32).map(|i| (SimTime::from_secs(i as u64), i)));
        while let Some((at, _)) = q.pop() {
            assert_eq!(at, SimTime::from_secs(100));
        }
    }

    #[test]
    fn schedule_batch_interleaves_with_single_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 100u32);
        q.schedule_batch([(SimTime::from_secs(5), 101u32), (SimTime::from_secs(1), 102)]);
        q.schedule(SimTime::from_secs(5), 103);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // Time order first, then insertion (seq) order for the 5 s ties.
        assert_eq!(order, vec![102, 100, 101, 103]);
    }

    #[test]
    fn keyed_queue_orders_by_at_then_key_then_seq() {
        let mut q = KeyedEventQueue::new();
        q.schedule(SimTime::from_secs(5), 9, "b-late-key");
        q.schedule(SimTime::from_secs(5), 1, "a-early-key");
        q.schedule(SimTime::from_secs(1), 100, "first-time");
        q.schedule(SimTime::from_secs(5), 9, "c-fifo-after-b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(
            order,
            vec!["first-time", "a-early-key", "b-late-key", "c-fifo-after-b"]
        );
    }

    #[test]
    fn keyed_queue_order_is_insertion_batching_independent() {
        // The defining property: the pop order depends only on the (at, key)
        // set, not on how entries were batched or interleaved at insertion.
        let entries: Vec<(SimTime, u64, u32)> = (0..200u32)
            .map(|i| (SimTime::from_secs(((i * 7919) % 23) as u64), ((i * 31) % 13) as u64, i))
            .collect();
        let mut causal = KeyedEventQueue::new();
        for (at, key, ev) in &entries {
            causal.schedule(*at, *key, *ev);
        }
        // Batched insertion in a different (sorted) order, split in two.
        let mut sorted = entries.clone();
        sorted.sort_by_key(|&(at, key, ev)| (at, key, ev));
        let mut batched = KeyedEventQueue::new();
        let half = sorted.len() / 2;
        batched.schedule_batch(sorted[..half].iter().copied());
        batched.schedule_batch(sorted[half..].iter().copied());
        let a: Vec<_> = std::iter::from_fn(|| causal.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| batched.pop()).collect();
        // Identical (at, key) pairs keep their per-queue FIFO order; the
        // entries here are distinct per (at, key, ev) except by construction,
        // so compare the full sequences modulo FIFO ties: sort equal-(at,key)
        // runs and compare.
        let canon = |mut v: Vec<(SimTime, u64, u32)>| {
            v.sort_by_key(|&(at, key, ev)| (at, key, ev));
            v
        };
        assert_eq!(a.len(), b.len());
        // Pop order must be sorted by (at, key) in both queues.
        for w in a.windows(2) {
            assert!((w[0].0, w[0].1) <= (w[1].0, w[1].1));
        }
        for w in b.windows(2) {
            assert!((w[0].0, w[0].1) <= (w[1].0, w[1].1));
        }
        assert_eq!(canon(a), canon(b));
    }

    #[test]
    fn keyed_queue_pop_before_is_exclusive() {
        let mut q = KeyedEventQueue::new();
        q.schedule(SimTime::from_secs(10), 0, 1);
        q.schedule(SimTime::from_secs(20), 0, 2);
        assert_eq!(q.pop_before(SimTime::from_secs(20)), Some((SimTime::from_secs(10), 0, 1)));
        assert_eq!(q.pop_before(SimTime::from_secs(20)), None);
        assert_eq!(q.pop_until(SimTime::from_secs(20)), Some((SimTime::from_secs(20), 0, 2)));
    }

    #[test]
    fn keyed_queue_batch_matches_sequential() {
        let entries: Vec<(SimTime, u64, u32)> = (0..500u32)
            .map(|i| (SimTime::from_secs(((i * 131) % 97) as u64), (i % 7) as u64, i))
            .collect();
        let mut sequential = KeyedEventQueue::new();
        for (at, key, ev) in &entries {
            sequential.schedule(*at, *key, *ev);
        }
        let mut batched = KeyedEventQueue::new();
        batched.schedule_batch(entries.iter().copied());
        let a: Vec<_> = std::iter::from_fn(|| sequential.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| batched.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn interleaved_schedule_and_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 10);
        q.schedule(SimTime::from_secs(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        // Schedule an event between the current clock and the next event.
        q.schedule(q.now() + SimDuration::from_secs(5), 15);
        assert_eq!(q.pop().unwrap().1, 15);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}
