//! Deterministic future-event list.
//!
//! A discrete-event simulation advances by repeatedly popping the earliest
//! scheduled event. [`EventQueue`] wraps a binary heap and guarantees a
//! *deterministic* ordering: events scheduled for the same instant are
//! delivered in insertion order (FIFO), so two simulation runs with the same
//! seed and the same schedule produce identical traces.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event together with the instant it is scheduled for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// The instant the event fires at.
    pub at: SimTime,
    /// Monotonically increasing sequence number used to break ties.
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

impl<E: Eq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (and within a
        // time, the lowest sequence number) is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: Eq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered queue of future events.
///
/// # Example
///
/// ```
/// use simclock::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_secs(5), "b");
/// q.schedule(SimTime::from_secs(1), "a");
/// q.schedule(SimTime::from_secs(5), "c");
///
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, vec!["a", "b", "c"]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E: Eq> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E: Eq> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time: the timestamp of the most recently popped
    /// event (or [`SimTime::ZERO`] before the first pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` to fire at instant `at`.
    ///
    /// Events scheduled for an instant earlier than the current clock are
    /// delivered at the current clock instead (the simulation never travels
    /// backwards).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent { at, seq, event });
    }

    /// Schedules many events at once.
    ///
    /// Semantically identical to calling [`EventQueue::schedule`] once per
    /// item in iteration order (same past-clamping, same FIFO tie-breaking),
    /// but large batches are heapified in *O(n)* and merged with
    /// [`BinaryHeap::append`]'s size-aware strategy instead of paying
    /// *O(log n)* per push. The simulation engine uses this to schedule the
    /// initial session churn of big populations in bulk.
    ///
    /// # Example
    ///
    /// ```
    /// use simclock::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// q.schedule_batch((0..1000u64).map(|i| (SimTime::from_secs(1000 - i), i)));
    /// assert_eq!(q.len(), 1000);
    /// assert_eq!(q.pop(), Some((SimTime::from_secs(1), 999)));
    /// ```
    pub fn schedule_batch(&mut self, events: impl IntoIterator<Item = (SimTime, E)>) {
        let batch: Vec<ScheduledEvent<E>> = events
            .into_iter()
            .map(|(at, event)| {
                let seq = self.next_seq;
                self.next_seq += 1;
                ScheduledEvent {
                    at: at.max(self.now),
                    seq,
                    event,
                }
            })
            .collect();
        if batch.len() <= 8 {
            // Small batches: plain pushes beat building a second heap.
            for ev in batch {
                self.heap.push(ev);
            }
        } else {
            let mut incoming = BinaryHeap::from(batch);
            self.heap.append(&mut incoming);
        }
    }

    /// Pops the earliest event and advances the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ScheduledEvent { at, event, .. } = self.heap.pop()?;
        self.now = at;
        Some((at, event))
    }

    /// Pops the earliest event only if it fires no later than `limit`.
    ///
    /// The clock advances to the event's timestamp when an event is returned
    /// and is left unchanged otherwise.
    pub fn pop_until(&mut self, limit: SimTime) -> Option<(SimTime, E)> {
        match self.heap.peek() {
            Some(ev) if ev.at <= limit => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|ev| ev.at)
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop(), Some((SimTime::from_secs(10), 1)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(20), 2)));
        assert_eq!(q.pop(), Some((SimTime::from_secs(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.schedule(SimTime::from_secs(7), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), SimTime::ZERO);
        q.schedule(SimTime::from_secs(42), ());
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(42));
    }

    #[test]
    fn scheduling_in_the_past_is_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(100), "late");
        q.pop();
        q.schedule(SimTime::from_secs(10), "early");
        let (at, ev) = q.pop().unwrap();
        assert_eq!(ev, "early");
        assert_eq!(at, SimTime::from_secs(100));
    }

    #[test]
    fn pop_until_respects_limit() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        assert_eq!(q.pop_until(SimTime::from_secs(15)), Some((SimTime::from_secs(10), 1)));
        assert_eq!(q.pop_until(SimTime::from_secs(15)), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(20)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        q.schedule(SimTime::from_secs(2), ());
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn schedule_batch_matches_sequential_schedules() {
        // Same inputs through schedule() and schedule_batch() must produce
        // identical pop sequences, including FIFO ties and past-clamping.
        let events: Vec<(SimTime, u32)> = (0..500u32)
            .map(|i| (SimTime::from_secs(((i * 7919) % 97) as u64), i))
            .collect();
        let mut sequential = EventQueue::new();
        for (at, ev) in &events {
            sequential.schedule(*at, *ev);
        }
        let mut batched = EventQueue::new();
        batched.schedule_batch(events.iter().copied());
        let a: Vec<_> = std::iter::from_fn(|| sequential.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| batched.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn schedule_batch_clamps_past_events_to_now() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(100), 0u32);
        q.pop();
        q.schedule_batch((1..20u32).map(|i| (SimTime::from_secs(i as u64), i)));
        while let Some((at, _)) = q.pop() {
            assert_eq!(at, SimTime::from_secs(100));
        }
    }

    #[test]
    fn schedule_batch_interleaves_with_single_schedules() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), 100u32);
        q.schedule_batch([(SimTime::from_secs(5), 101u32), (SimTime::from_secs(1), 102)]);
        q.schedule(SimTime::from_secs(5), 103);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        // Time order first, then insertion (seq) order for the 5 s ties.
        assert_eq!(order, vec![102, 100, 101, 103]);
    }

    #[test]
    fn interleaved_schedule_and_pop_remains_ordered() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), 10);
        q.schedule(SimTime::from_secs(30), 30);
        assert_eq!(q.pop().unwrap().1, 10);
        // Schedule an event between the current clock and the next event.
        q.schedule(q.now() + SimDuration::from_secs(5), 15);
        assert_eq!(q.pop().unwrap().1, 15);
        assert_eq!(q.pop().unwrap().1, 30);
    }
}
