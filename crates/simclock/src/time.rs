//! Simulated time.
//!
//! All simulation components share a single millisecond-resolution clock.
//! [`SimTime`] is an absolute instant (milliseconds since the start of the
//! simulation) and [`SimDuration`] is a span between two instants. Both are
//! thin wrappers around `u64` so they are `Copy`, ordered and hashable, and
//! both serialize as plain integers for the JSON export of measurement data.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant in simulated time, measured in milliseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use simclock::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_secs(90);
/// assert_eq!(later.as_secs(), 90);
/// assert_eq!(later - start, SimDuration::from_secs(90));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time in milliseconds.
///
/// # Example
///
/// ```
/// use simclock::SimDuration;
///
/// let d = SimDuration::from_hours(2);
/// assert_eq!(d.as_secs(), 7200);
/// assert_eq!(d * 3, SimDuration::from_hours(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from milliseconds since simulation start.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates an instant from seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1000)
    }

    /// Creates an instant from hours since simulation start.
    pub const fn from_hours(hours: u64) -> Self {
        SimTime(hours * 3_600_000)
    }

    /// Creates an instant from days since simulation start.
    pub const fn from_days(days: u64) -> Self {
        SimTime(days * 86_400_000)
    }

    /// Milliseconds since simulation start.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Seconds since simulation start as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Whole hours since simulation start.
    pub const fn as_hours(self) -> u64 {
        self.0 / 3_600_000
    }

    /// The duration elapsed since `earlier`, or [`SimDuration::ZERO`] if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1000)
    }

    /// Creates a duration from a floating point number of seconds.
    ///
    /// Negative and non-finite values are clamped to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1000.0).round() as u64)
    }

    /// Creates a duration from minutes.
    pub const fn from_mins(mins: u64) -> Self {
        SimDuration(mins * 60_000)
    }

    /// Creates a duration from hours.
    pub const fn from_hours(hours: u64) -> Self {
        SimDuration(hours * 3_600_000)
    }

    /// Creates a duration from days.
    pub const fn from_days(days: u64) -> Self {
        SimDuration(days * 86_400_000)
    }

    /// Duration in milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Duration in whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0 / 1000
    }

    /// Duration in seconds as a floating point value.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration in whole hours.
    pub const fn as_hours(self) -> u64 {
        self.0 / 3_600_000
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1000;
        let ms = self.0 % 1000;
        let days = total_secs / 86_400;
        let hours = (total_secs % 86_400) / 3600;
        let mins = (total_secs % 3600) / 60;
        let secs = total_secs % 60;
        if days > 0 {
            write!(f, "{days}d{hours:02}h{mins:02}m{secs:02}s")
        } else if hours > 0 {
            write!(f, "{hours}h{mins:02}m{secs:02}s")
        } else if mins > 0 {
            write!(f, "{mins}m{secs:02}s")
        } else if ms > 0 && total_secs < 10 {
            write!(f, "{secs}.{ms:03}s")
        } else {
            write!(f, "{secs}s")
        }
    }
}

impl From<SimDuration> for f64 {
    fn from(d: SimDuration) -> f64 {
        d.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_secs(100);
        let d = SimDuration::from_secs(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn subtraction_saturates_at_zero() {
        let early = SimTime::from_secs(10);
        let late = SimTime::from_secs(20);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early - SimDuration::from_secs(100), SimTime::ZERO);
    }

    #[test]
    fn conversions_are_consistent() {
        assert_eq!(SimTime::from_hours(2), SimTime::from_secs(7200));
        assert_eq!(SimDuration::from_days(1), SimDuration::from_hours(24));
        assert_eq!(SimDuration::from_mins(3).as_secs(), 180);
        assert_eq!(SimDuration::from_secs(5).as_millis(), 5000);
    }

    #[test]
    fn from_secs_f64_clamps_invalid_values() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn display_formats_are_compact() {
        assert_eq!(SimDuration::from_secs(5).to_string(), "5s");
        assert_eq!(SimDuration::from_secs(65).to_string(), "1m05s");
        assert_eq!(SimDuration::from_hours(3).to_string(), "3h00m00s");
        assert_eq!(SimDuration::from_days(2).to_string(), "2d00h00m00s");
        assert_eq!(SimDuration::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimTime::from_secs(65).to_string(), "t+1m05s");
    }

    #[test]
    fn min_max_behave() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_secs(1);
        let y = SimDuration::from_secs(2);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(SimDuration::from_secs(10) * 6, SimDuration::from_mins(1));
        assert_eq!(SimDuration::from_mins(1) / 6, SimDuration::from_secs(10));
    }

}
