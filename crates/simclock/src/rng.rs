//! Deterministic random number generation for simulations.
//!
//! Every stochastic decision in the simulator — session lengths, arrival
//! times, which peer dials whom — is drawn from a [`SimRng`] seeded at the
//! start of a run, so the entire measurement study is reproducible from a
//! single `u64` seed.
//!
//! Besides uniform sampling, the churn models need a small set of
//! distributions that are not worth an extra dependency:
//!
//! * [`SimRng::exp`] — exponential inter-arrival times (Poisson processes).
//! * [`SimRng::log_normal`] — heavy-tailed but finite-mean session durations.
//! * [`SimRng::pareto`] — very heavy-tailed durations for the stable core.
//! * [`SimRng::zipf`] — popularity-skewed choices (e.g. version adoption).
//!
//! The generator itself is a self-contained xoshiro256++ instance seeded via
//! SplitMix64, so the whole workspace is reproducible without any external
//! RNG crate. The stream is *not* cryptographic — it only needs to be
//! deterministic, well-mixed and fast.

/// One step of the SplitMix64 sequence: advances `state` and returns the
/// mixed output.
///
/// This is the canonical way to expand a 64-bit seed into more state (the
/// xoshiro authors' recommendation), and the workspace's shared primitive
/// for deriving decorrelated seeds from coordinates — see
/// `measurement::sweep` for the main consumer.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a string, for mixing textual labels into seed derivations.
///
/// # Example
///
/// ```
/// use simclock::rng::fnv1a;
///
/// assert_eq!(fnv1a("P1"), fnv1a("P1"));
/// assert_ne!(fnv1a("P1"), fnv1a("P2"));
/// ```
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The xoshiro256++ core: 256 bits of state, 64-bit output.
///
/// Reference: Blackman & Vigna, "Scrambled linear pseudorandom number
/// generators" (the public-domain xoshiro256plusplus.c).
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full state with SplitMix64, as the
    /// xoshiro authors recommend (guarantees a non-zero state).
    fn from_seed(seed: u64) -> Self {
        let mut state = seed;
        Xoshiro256pp {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// An unbiased value in `[0, span)` via Lemire's multiply-shift method
    /// with rejection.
    #[inline]
    fn bounded(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (span as u128);
        let mut low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            while low < threshold {
                x = self.next_u64();
                m = (x as u128) * (span as u128);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A seeded random number generator with the distributions used by the
/// population and churn models.
///
/// # Example
///
/// ```
/// use simclock::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.uniform_u64(0, 100), b.uniform_u64(0, 100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::from_seed(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// Components that evolve independently (e.g. each simulated node) get
    /// their own child generator so that adding or removing one component
    /// does not perturb the random streams of the others.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::seed_from(base ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A uniformly distributed `u64` in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn uniform_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "uniform_u64 requires low < high");
        low + self.inner.bounded(high - low)
    }

    /// A uniformly distributed `usize` in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index requires a non-empty range");
        self.inner.bounded(n as u64) as usize
    }

    /// A uniformly distributed `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.unit_f64()
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.unit_f64() < p
        }
    }

    /// A fresh random 64-bit value (used to derive peer IDs).
    pub fn raw_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let bytes = self.inner.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// An exponentially distributed value with the given mean.
    ///
    /// Used for inter-arrival times of Poisson processes (e.g. one-time users
    /// joining the network). A non-positive or non-finite mean yields `0`.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if !mean.is_finite() || mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.unit_f64().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// A log-normally distributed value parameterised by the *median* and the
    /// shape `sigma` (standard deviation of the underlying normal).
    ///
    /// Session durations in P2P networks are well described by log-normal
    /// distributions: most sessions are short, but a long tail exists.
    pub fn log_normal(&mut self, median: f64, sigma: f64) -> f64 {
        if !median.is_finite() || median <= 0.0 {
            return 0.0;
        }
        let z = self.standard_normal();
        median * (sigma * z).exp()
    }

    /// A Pareto-distributed value with minimum `scale` and tail index `alpha`.
    ///
    /// Used for the stable core of the network whose uptimes are very heavy
    /// tailed (a small fraction of peers stays connected for days).
    pub fn pareto(&mut self, scale: f64, alpha: f64) -> f64 {
        if !scale.is_finite() || scale <= 0.0 || !alpha.is_finite() || alpha <= 0.0 {
            return 0.0;
        }
        let u: f64 = self.inner.unit_f64().max(f64::EPSILON);
        scale / u.powf(1.0 / alpha)
    }

    /// A standard normal value (mean 0, variance 1) via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = self.inner.unit_f64().max(f64::EPSILON);
        let u2: f64 = self.inner.unit_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A Zipf-distributed rank in `[0, n)` with exponent `s`.
    ///
    /// Rank 0 is the most popular outcome. Used to skew e.g. agent-version
    /// adoption towards the most recent releases.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn zipf(&mut self, n: usize, s: f64) -> usize {
        assert!(n > 0, "zipf requires a non-empty range");
        // Inverse-CDF sampling over the (small) discrete support. The support
        // sizes used by the population models are tens of entries, so the
        // linear scan is not a bottleneck.
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(s)).collect();
        let total: f64 = weights.iter().sum();
        let mut target = self.inner.unit_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= *w;
        }
        n - 1
    }

    /// Chooses an index according to the given non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or all weights are zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "weights must be non-empty and non-zero");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must be non-empty and non-zero");
        let mut target = self.inner.unit_f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if target < *w {
                return i;
            }
            target -= *w;
        }
        // Floating-point underflow at the very end of the scan: return the
        // last index with a non-zero weight.
        weights
            .iter()
            .rposition(|w| *w > 0.0)
            .expect("total > 0 implies a positive weight exists")
    }

    /// Chooses a reference to a random element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.bounded(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (or all of them if `k >= n`).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx.truncate(k.min(n));
        idx
    }

    /// A uniformly distributed value from an inclusive integer range, as a
    /// convenience for configuration jitter.
    pub fn jitter(&mut self, low: u64, high_inclusive: u64) -> u64 {
        if low >= high_inclusive {
            return low;
        }
        low + self.inner.bounded(high_inclusive - low + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(123);
        let mut b = SimRng::seed_from(123);
        for _ in 0..100 {
            assert_eq!(a.raw_u64(), b.raw_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..64).filter(|_| a.raw_u64() == b.raw_u64()).count();
        assert!(same < 4, "independent streams should rarely collide");
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seed_from(9);
        let mut parent2 = SimRng::seed_from(9);
        let mut c1 = parent1.fork(42);
        let mut c2 = parent2.fork(42);
        assert_eq!(c1.raw_u64(), c2.raw_u64());

        let mut parent3 = SimRng::seed_from(9);
        let mut other = parent3.fork(43);
        assert_ne!(c1.raw_u64(), other.raw_u64());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            let v = rng.uniform_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn exp_has_roughly_correct_mean() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mean = 120.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed} too far from {mean}"
        );
    }

    #[test]
    fn exp_degenerate_inputs_are_zero() {
        let mut rng = SimRng::seed_from(11);
        assert_eq!(rng.exp(0.0), 0.0);
        assert_eq!(rng.exp(-5.0), 0.0);
        assert_eq!(rng.exp(f64::NAN), 0.0);
    }

    #[test]
    fn log_normal_median_is_roughly_right() {
        let mut rng = SimRng::seed_from(13);
        let n = 20_001;
        let median = 300.0;
        let mut vals: Vec<f64> = (0..n).map(|_| rng.log_normal(median, 1.5)).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let observed = vals[n / 2];
        assert!(
            (observed - median).abs() < median * 0.15,
            "observed median {observed} too far from {median}"
        );
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = SimRng::seed_from(17);
        for _ in 0..1000 {
            assert!(rng.pareto(60.0, 1.2) >= 60.0);
        }
        assert_eq!(rng.pareto(0.0, 1.0), 0.0);
        assert_eq!(rng.pareto(1.0, 0.0), 0.0);
    }

    #[test]
    fn zipf_is_skewed_towards_low_ranks() {
        let mut rng = SimRng::seed_from(19);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.zipf(10, 1.0)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > counts[9]);
        assert_eq!(counts.iter().sum::<usize>(), 10_000);
    }

    #[test]
    fn weighted_index_prefers_heavier_weights() {
        let mut rng = SimRng::seed_from(23);
        let weights = [1.0, 0.0, 10.0];
        let mut counts = [0usize; 3];
        for _ in 0..5_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(29);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_are_distinct_and_bounded() {
        let mut rng = SimRng::seed_from(31);
        let sample = rng.sample_indices(100, 10);
        assert_eq!(sample.len(), 10);
        let mut dedup = sample.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(sample.iter().all(|&i| i < 100));

        // Requesting more than available returns everything.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn jitter_handles_degenerate_range() {
        let mut rng = SimRng::seed_from(37);
        assert_eq!(rng.jitter(5, 5), 5);
        assert_eq!(rng.jitter(7, 3), 7);
        for _ in 0..100 {
            let v = rng.jitter(1, 3);
            assert!((1..=3).contains(&v));
        }
    }
}
