//! Discrete-event simulation substrate.
//!
//! The paper's measurement study observes a live peer-to-peer network over
//! wall-clock time. This reproduction replaces the live network with a
//! discrete-event simulation; `simclock` provides the three primitives every
//! other crate builds on:
//!
//! * [`SimTime`] / [`SimDuration`] — a millisecond-resolution simulated clock.
//! * [`EventQueue`] — a deterministic future-event list (the core of the
//!   discrete-event engine).
//! * [`SimRng`] — a seeded, reproducible random number generator together with
//!   the heavy-tailed distributions used by the churn models.
//! * [`stats`] — summary statistics (mean / median / percentiles), histograms,
//!   CDFs and time series used by the analysis crate.
//!
//! # Example
//!
//! ```
//! use simclock::{EventQueue, SimDuration, SimTime};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(30), "snapshot");
//! queue.schedule(SimTime::ZERO + SimDuration::from_secs(10), "dial");
//!
//! let (t, ev) = queue.pop().unwrap();
//! assert_eq!(ev, "dial");
//! assert_eq!(t, SimTime::from_secs(10));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod rng;
pub mod stats;
pub mod time;

pub use event::{EventQueue, KeyedEventQueue, KeyedScheduledEvent, ScheduledEvent};
pub use rng::SimRng;
pub use stats::{Cdf, Histogram, Summary, TimeSeries};
pub use time::{SimDuration, SimTime};
