//! Summary statistics, histograms, CDFs and time series.
//!
//! The paper reports its results as summary statistics (Table II), log-scale
//! histograms (Fig. 3/4), time series (Fig. 5/6) and CDFs (Fig. 7). The types
//! in this module are the shared numeric backbone for all of those analyses.

use std::collections::BTreeMap;

/// Summary statistics over a set of samples: count, sum, mean, median, min,
/// max and selected percentiles.
///
/// # Example
///
/// ```
/// use simclock::Summary;
///
/// let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.count, 4);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.median, 2.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Sum of all samples.
    pub sum: f64,
    /// Arithmetic mean (0 for an empty sample set).
    pub mean: f64,
    /// Median (0 for an empty sample set).
    pub median: f64,
    /// Smallest sample (0 for an empty sample set).
    pub min: f64,
    /// Largest sample (0 for an empty sample set).
    pub max: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Computes summary statistics over `samples`.
    ///
    /// Non-finite samples are ignored. An empty (or all-non-finite) input
    /// yields an all-zero summary with `count == 0`.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut values: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        if values.is_empty() {
            return Summary {
                count: 0,
                sum: 0.0,
                mean: 0.0,
                median: 0.0,
                min: 0.0,
                max: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        values.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite values"));
        let count = values.len();
        let sum: f64 = values.iter().sum();
        Summary {
            count,
            sum,
            mean: sum / count as f64,
            median: percentile_sorted(&values, 0.5),
            min: values[0],
            max: values[count - 1],
            p90: percentile_sorted(&values, 0.9),
            p99: percentile_sorted(&values, 0.99),
        }
    }

    /// Whether the summary was computed from an empty sample set.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// Computes the `q`-quantile (`0.0 ..= 1.0`) of an **already sorted** slice
/// using linear interpolation between the two nearest ranks.
///
/// Returns `0.0` for an empty slice. `q` is clamped to `[0, 1]`.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lower = pos.floor() as usize;
    let upper = pos.ceil() as usize;
    if lower == upper {
        sorted[lower]
    } else {
        let frac = pos - lower as f64;
        sorted[lower] * (1.0 - frac) + sorted[upper] * frac
    }
}

/// Computes the median of an unsorted slice (ignoring non-finite values).
pub fn median(samples: &[f64]) -> f64 {
    Summary::from_samples(samples).median
}

/// Computes the arithmetic mean of an unsorted slice (ignoring non-finite
/// values).
pub fn mean(samples: &[f64]) -> f64 {
    Summary::from_samples(samples).mean
}

/// A labelled count histogram (e.g. occurrences per agent-version string).
///
/// Entries are kept in a `BTreeMap` so iteration order — and therefore report
/// output — is deterministic.
///
/// # Example
///
/// ```
/// use simclock::Histogram;
///
/// let mut h = Histogram::new();
/// h.add("go-ipfs/0.11.0");
/// h.add("go-ipfs/0.11.0");
/// h.add("hydra-booster/0.7.4");
/// assert_eq!(h.count("go-ipfs/0.11.0"), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<String, u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Increments the count for `label` by one.
    pub fn add(&mut self, label: impl Into<String>) {
        self.add_count(label, 1);
    }

    /// Increments the count for `label` by `n`.
    pub fn add_count(&mut self, label: impl Into<String>, n: u64) {
        *self.counts.entry(label.into()).or_insert(0) += n;
    }

    /// The count recorded for `label` (0 if absent).
    pub fn count(&self, label: &str) -> u64 {
        self.counts.get(label).copied().unwrap_or(0)
    }

    /// Total count across all labels.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Number of distinct labels.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Iterates over `(label, count)` pairs in label order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Returns `(label, count)` pairs sorted by descending count (ties broken
    /// by label so the order is deterministic).
    pub fn sorted_by_count(&self) -> Vec<(String, u64)> {
        let mut entries: Vec<(String, u64)> =
            self.counts.iter().map(|(k, v)| (k.clone(), *v)).collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        entries
    }

    /// Collapses every label whose count is `<= threshold` into a single
    /// `other` bucket, mirroring the presentation of Fig. 3 and Fig. 4.
    pub fn group_small(&self, threshold: u64, other_label: &str) -> Histogram {
        let mut grouped = Histogram::new();
        for (label, count) in self.iter() {
            if count <= threshold {
                grouped.add_count(other_label, count);
            } else {
                grouped.add_count(label, count);
            }
        }
        grouped
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (label, count) in other.iter() {
            self.add_count(label, count);
        }
    }
}

impl<S: Into<String>> FromIterator<S> for Histogram {
    fn from_iter<I: IntoIterator<Item = S>>(iter: I) -> Self {
        let mut h = Histogram::new();
        for item in iter {
            h.add(item);
        }
        h
    }
}

impl<S: Into<String>> Extend<S> for Histogram {
    fn extend<I: IntoIterator<Item = S>>(&mut self, iter: I) {
        for item in iter {
            self.add(item);
        }
    }
}

/// An empirical cumulative distribution function.
///
/// # Example
///
/// ```
/// use simclock::Cdf;
///
/// let cdf = Cdf::from_samples(&[10.0, 20.0, 30.0, 40.0]);
/// assert_eq!(cdf.fraction_at_or_below(20.0), 0.5);
/// assert_eq!(cdf.fraction_at_or_below(5.0), 0.0);
/// assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds an empirical CDF from (possibly unsorted) samples.
    ///
    /// Non-finite samples are ignored.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut sorted: Vec<f64> = samples.iter().copied().filter(|v| v.is_finite()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("filtered to finite values"));
        Cdf { sorted }
    }

    /// Number of samples behind the CDF.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (0 for an empty CDF).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile of the samples (`q` clamped to `[0, 1]`).
    pub fn quantile(&self, q: f64) -> f64 {
        percentile_sorted(&self.sorted, q)
    }

    /// Evaluates the CDF at each of the given points, returning `(x, F(x))`
    /// pairs — the series plotted in Fig. 7.
    pub fn evaluate_at(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points
            .iter()
            .map(|&x| (x, self.fraction_at_or_below(x)))
            .collect()
    }

    /// Generates logarithmically spaced evaluation points from `start` to
    /// `end` (inclusive), matching the log-scale x-axes used by the paper.
    pub fn log_points(start: f64, end: f64, per_decade: usize) -> Vec<f64> {
        if start <= 0.0 || end <= start || per_decade == 0 {
            return Vec::new();
        }
        let mut points = Vec::new();
        let decades = (end / start).log10();
        let n = (decades * per_decade as f64).ceil() as usize;
        for i in 0..=n {
            let exp = i as f64 / per_decade as f64;
            let x = start * 10f64.powf(exp);
            if x > end * 1.0000001 {
                break;
            }
            points.push(x);
        }
        if points.last().map(|&l| l < end) == Some(true) {
            points.push(end);
        }
        points
    }
}

/// A time series of `(time-in-seconds, value)` samples, used for the
/// simultaneous-connection plots (Fig. 5) and PID growth (Fig. 6).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Samples should be appended in time order; the series
    /// keeps whatever order it is given.
    pub fn push(&mut self, time_secs: f64, value: f64) {
        self.points.push((time_secs, value));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The samples as a slice of `(time, value)` pairs.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The maximum value in the series (0 for an empty series).
    pub fn max_value(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0, f64::max)
    }

    /// The last value in the series, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Restricts the series to samples with `time <= limit_secs`.
    pub fn truncate_after(&self, limit_secs: f64) -> TimeSeries {
        TimeSeries {
            points: self
                .points
                .iter()
                .copied()
                .filter(|&(t, _)| t <= limit_secs)
                .collect(),
        }
    }

    /// Downsamples the series to at most `max_points` samples by keeping every
    /// k-th point (always keeping the final point), for compact reports.
    pub fn downsample(&self, max_points: usize) -> TimeSeries {
        if max_points == 0 || self.points.len() <= max_points {
            return self.clone();
        }
        let step = self.points.len().div_ceil(max_points);
        let mut points: Vec<(f64, f64)> = self.points.iter().copied().step_by(step).collect();
        if let Some(last) = self.points.last() {
            if points.last() != Some(last) {
                points.push(*last);
            }
        }
        TimeSeries { points }
    }
}

impl FromIterator<(f64, f64)> for TimeSeries {
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        TimeSeries {
            points: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_input_is_zeroed() {
        let s = Summary::from_samples(&[]);
        assert!(s.is_empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.median, 0.0);
    }

    #[test]
    fn summary_ignores_non_finite_values() {
        let s = Summary::from_samples(&[1.0, f64::NAN, 3.0, f64::INFINITY]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
    }

    #[test]
    fn summary_of_single_value() {
        let s = Summary::from_samples(&[42.0]);
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.median, 42.0);
        assert_eq!(s.p90, 42.0);
        assert_eq!(s.p99, 42.0);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.5), 5.0);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 1.0), 10.0);
        assert_eq!(percentile_sorted(&[], 0.5), 0.0);
        // Out-of-range quantiles are clamped.
        assert_eq!(percentile_sorted(&sorted, 2.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, -1.0), 0.0);
    }

    #[test]
    fn histogram_counts_and_groups() {
        let mut h = Histogram::new();
        for _ in 0..150 {
            h.add("go-ipfs/0.11.0");
        }
        for _ in 0..50 {
            h.add("rare-agent");
        }
        h.add("storm");
        assert_eq!(h.distinct(), 3);
        assert_eq!(h.total(), 201);

        let grouped = h.group_small(100, "other");
        assert_eq!(grouped.count("go-ipfs/0.11.0"), 150);
        assert_eq!(grouped.count("other"), 51);
        assert_eq!(grouped.count("rare-agent"), 0);
        assert_eq!(grouped.total(), h.total());
    }

    #[test]
    fn histogram_sorted_by_count_is_descending_and_deterministic() {
        let mut h = Histogram::new();
        h.add_count("b", 5);
        h.add_count("a", 5);
        h.add_count("c", 10);
        let sorted = h.sorted_by_count();
        assert_eq!(sorted[0].0, "c");
        assert_eq!(sorted[1].0, "a");
        assert_eq!(sorted[2].0, "b");
    }

    #[test]
    fn histogram_merge_and_collect() {
        let mut a: Histogram = ["x", "y"].into_iter().collect();
        let b: Histogram = ["y", "z"].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.count("x"), 1);
        assert_eq!(a.count("y"), 2);
        assert_eq!(a.count("z"), 1);

        let mut c = Histogram::new();
        c.extend(["p", "p"]);
        assert_eq!(c.count("p"), 2);
    }

    #[test]
    fn cdf_fractions_are_monotone_and_bounded() {
        let cdf = Cdf::from_samples(&[5.0, 1.0, 3.0, 2.0, 4.0]);
        assert_eq!(cdf.len(), 5);
        let mut prev = 0.0;
        for x in [0.0, 1.0, 2.5, 3.0, 10.0] {
            let f = cdf.fraction_at_or_below(x);
            assert!(f >= prev);
            assert!((0.0..=1.0).contains(&f));
            prev = f;
        }
        assert_eq!(cdf.fraction_at_or_below(5.0), 1.0);
    }

    #[test]
    fn cdf_quantiles_match_samples() {
        let cdf = Cdf::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(cdf.quantile(0.0), 1.0);
        assert_eq!(cdf.quantile(0.5), 3.0);
        assert_eq!(cdf.quantile(1.0), 5.0);
    }

    #[test]
    fn cdf_empty_is_safe() {
        let cdf = Cdf::from_samples(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(10.0), 0.0);
        assert_eq!(cdf.quantile(0.5), 0.0);
    }

    #[test]
    fn log_points_span_the_requested_range() {
        let points = Cdf::log_points(1.0, 1000.0, 2);
        assert!(points.first().copied().unwrap() >= 1.0);
        assert!((points.last().copied().unwrap() - 1000.0).abs() < 1e-6);
        for w in points.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(Cdf::log_points(0.0, 10.0, 2).is_empty());
        assert!(Cdf::log_points(10.0, 1.0, 2).is_empty());
        assert!(Cdf::log_points(1.0, 10.0, 0).is_empty());
    }

    #[test]
    fn timeseries_basics() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(0.0, 1.0);
        ts.push(30.0, 5.0);
        ts.push(60.0, 3.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.max_value(), 5.0);
        assert_eq!(ts.last_value(), Some(3.0));

        let truncated = ts.truncate_after(30.0);
        assert_eq!(truncated.len(), 2);
    }

    #[test]
    fn timeseries_downsample_keeps_last_point() {
        let ts: TimeSeries = (0..100).map(|i| (i as f64, i as f64)).collect();
        let ds = ts.downsample(10);
        assert!(ds.len() <= 11);
        assert_eq!(ds.points().last(), Some(&(99.0, 99.0)));
        // Downsampling to more points than exist is the identity.
        assert_eq!(ts.downsample(1000), ts);
        assert_eq!(ts.downsample(0), ts);
    }
}
