//! Remote-peer behaviour specifications.
//!
//! The simulator does not model the full overlay graph; it models the part a
//! passive measurement node can see — the edges incident to the observers —
//! and drives the remote side of those edges with per-peer behaviour
//! parameters. The `population` crate generates one [`RemotePeerSpec`] per
//! peer, calibrated so the aggregate matches the composition the paper
//! reports (agents, protocols, churn classes, hydra co-location, …).

use crate::dht::DhtConduct;
use p2pmodel::{AgentVersion, IdentifyInfo, Multiaddr, PeerId, ProtocolId, ProtocolSet};
use simclock::{SimDuration, SimRng, SimTime};

/// When, and for how long, a peer is online.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionPattern {
    /// Online for the entire simulation (the stable core: long-running
    /// servers, hydra heads, infrastructure nodes).
    AlwaysOn,
    /// Alternating online/offline sessions. Session and gap lengths are
    /// drawn from log-normal distributions with the given medians (seconds)
    /// and shape `sigma`.
    Intermittent {
        /// Median online-session length in seconds.
        online_median_secs: f64,
        /// Median offline-gap length in seconds.
        offline_median_secs: f64,
        /// Log-normal shape parameter for both distributions.
        sigma: f64,
        /// Offset of the first session start from the simulation start, in
        /// seconds (peers do not all join at once).
        initial_delay_secs: f64,
    },
    /// Joins exactly once and leaves for good (the paper's "one-time users").
    OneShot {
        /// Arrival time offset from the simulation start, in seconds.
        arrival_secs: f64,
        /// How long the peer stays, in seconds.
        stay_secs: f64,
    },
}

impl SessionPattern {
    /// The first session of the pattern: `(start, optional end)` relative to
    /// the simulation start. `None` means the session lasts to the end of the
    /// run.
    pub fn first_session(&self, rng: &mut SimRng) -> (SimTime, Option<SimTime>) {
        match self {
            SessionPattern::AlwaysOn => (SimTime::ZERO, None),
            SessionPattern::Intermittent {
                online_median_secs,
                sigma,
                initial_delay_secs,
                ..
            } => {
                let start = SimTime::ZERO + SimDuration::from_secs_f64(*initial_delay_secs);
                let len = rng.log_normal(*online_median_secs, *sigma);
                (start, Some(start + SimDuration::from_secs_f64(len)))
            }
            SessionPattern::OneShot {
                arrival_secs,
                stay_secs,
            } => {
                let start = SimTime::ZERO + SimDuration::from_secs_f64(*arrival_secs);
                (start, Some(start + SimDuration::from_secs_f64(*stay_secs)))
            }
        }
    }

    /// The next session after a session that ended at `ended_at`, if the
    /// pattern rejoins: `(start, optional end)`.
    pub fn next_session(&self, ended_at: SimTime, rng: &mut SimRng) -> Option<(SimTime, Option<SimTime>)> {
        match self {
            SessionPattern::AlwaysOn | SessionPattern::OneShot { .. } => None,
            SessionPattern::Intermittent {
                online_median_secs,
                offline_median_secs,
                sigma,
                ..
            } => {
                let gap = rng.log_normal(*offline_median_secs, *sigma).max(1.0);
                let start = ended_at + SimDuration::from_secs_f64(gap);
                let len = rng.log_normal(*online_median_secs, *sigma).max(1.0);
                Some((start, Some(start + SimDuration::from_secs_f64(len))))
            }
        }
    }
}

/// How a remote peer behaves towards an observer: whether and how often it
/// dials, and how long it keeps a connection before trimming it.
#[derive(Debug, Clone, PartialEq)]
pub struct DialBehavior {
    /// Probability that the peer ever dials a DHT-Server observer during a
    /// session. DHT-Servers are discoverable via routing, so this is high
    /// for most archetypes.
    pub dial_server_prob: f64,
    /// Probability that the peer ever dials a DHT-Client observer during a
    /// session (it can only learn about it from an earlier outbound contact,
    /// so this is much lower).
    pub dial_client_prob: f64,
    /// Median delay (seconds) between coming online / losing a connection and
    /// (re)dialing the observer.
    pub redial_median_secs: f64,
    /// Log-normal shape for the redial delay.
    pub redial_sigma: f64,
    /// Whether the peer re-establishes the connection after it is closed
    /// (crawlers and one-time users do not).
    pub reconnect: bool,
    /// Median time (seconds) the *remote* side keeps the connection open
    /// before its own connection manager trims it, when the observer is a
    /// DHT-Server.
    pub hold_server_median_secs: f64,
    /// Same, when the observer is a DHT-Client (clients are prime trimming
    /// candidates, so this is shorter).
    pub hold_client_median_secs: f64,
    /// Log-normal shape for the hold time. Large values produce the heavy
    /// tail of connections that survive for days.
    pub hold_sigma: f64,
    /// Probability that the identify exchange completes on a given
    /// connection (peers with `Missing` metadata in the paper never
    /// completed one).
    pub identify_prob: f64,
    /// Value tag the observer's connection manager assigns to connections
    /// with this peer (DHT-relevant peers score higher and survive local
    /// trims longer).
    pub observer_value: i32,
}

impl DialBehavior {
    /// A neutral default: dials servers eagerly, reconnects, holds
    /// connections for a couple of minutes.
    pub fn default_peer() -> Self {
        DialBehavior {
            dial_server_prob: 0.9,
            dial_client_prob: 0.02,
            redial_median_secs: 60.0,
            redial_sigma: 1.0,
            reconnect: true,
            hold_server_median_secs: 90.0,
            hold_client_median_secs: 60.0,
            hold_sigma: 1.2,
            identify_prob: 0.97,
            observer_value: 0,
        }
    }

    /// Samples the hold time of a new connection given the observer role.
    pub fn sample_hold(&self, observer_is_server: bool, rng: &mut SimRng) -> SimDuration {
        let median = if observer_is_server {
            self.hold_server_median_secs
        } else {
            self.hold_client_median_secs
        };
        SimDuration::from_secs_f64(rng.log_normal(median, self.hold_sigma).max(1.0))
    }

    /// Samples the delay before the peer (re)dials an observer.
    pub fn sample_redial_delay(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.log_normal(self.redial_median_secs, self.redial_sigma).max(1.0))
    }

    /// Whether the peer dials an observer with the given role at all.
    pub fn dials(&self, observer_is_server: bool, rng: &mut SimRng) -> bool {
        let p = if observer_is_server {
            self.dial_server_prob
        } else {
            self.dial_client_prob
        };
        rng.chance(p)
    }
}

/// A change to a remote peer's announced metadata, applied at a scheduled
/// time (version upgrades/downgrades, DHT role switches, autonat flapping).
#[derive(Debug, Clone, PartialEq)]
pub enum MetadataChange {
    /// Replace the agent version string.
    SetAgent(AgentVersion),
    /// Announce an additional protocol.
    AddProtocol(String),
    /// Stop announcing a protocol.
    RemoveProtocol(String),
    /// Replace the entire protocol set.
    SetProtocols(ProtocolSet),
}

impl MetadataChange {
    /// Applies the change to an identify payload in place.
    ///
    /// Both engines share this: the single-engine runner applies changes
    /// lazily when the metadata event fires, the cross-shard engine applies
    /// the whole chain up front to pre-intern every payload version a peer
    /// will ever announce. One implementation keeps the two byte-compatible.
    pub fn apply(&self, identify: &mut IdentifyInfo) {
        match self {
            MetadataChange::SetAgent(agent) => identify.agent = agent.clone(),
            MetadataChange::AddProtocol(p) => {
                identify.protocols.insert(ProtocolId::new(p.clone()));
            }
            MetadataChange::RemoveProtocol(p) => {
                identify.protocols.remove(p);
            }
            MetadataChange::SetProtocols(protocols) => identify.protocols = protocols.clone(),
        }
    }
}

/// A metadata change scheduled for a specific simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledChange {
    /// When the change takes effect.
    pub at: SimTime,
    /// What changes.
    pub change: MetadataChange,
}

/// A scripted mutation of the peer population, applied mid-run.
///
/// Churn scenarios (diurnal waves, flash crowds, PID-rotation floods, …) are
/// expressed as streams of these actions layered on top of a base
/// population; the engine injects them through its event queue, so they
/// interleave deterministically with the ordinary session/dial/trim events.
#[derive(Debug, Clone, PartialEq)]
pub enum PopulationAction {
    /// New peers join the network. Their session patterns and scheduled
    /// metadata changes are interpreted *relative to the injection time*
    /// (an `arrival_secs` of 0 means "online at the moment of the batch").
    Join(Vec<RemotePeerSpec>),
    /// The named peers leave permanently: they are forced offline and their
    /// session patterns never rejoin. Unknown PIDs are ignored.
    Leave(Vec<PeerId>),
    /// An operator cycles its identity: the `retire`d PIDs leave permanently
    /// and the `join` replacements enter in the same instant (the paper's
    /// rotating-PID operator behind a single IP).
    Rotate {
        /// PIDs retired by the rotation.
        retire: Vec<PeerId>,
        /// Replacement peers joining in the same instant.
        join: Vec<RemotePeerSpec>,
    },
}

/// A [`PopulationAction`] scheduled for a specific simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationEvent {
    /// When the action is applied.
    pub at: SimTime,
    /// The population mutation.
    pub action: PopulationAction,
}

/// Everything the simulator needs to know about one remote peer.
#[derive(Debug, Clone, PartialEq)]
pub struct RemotePeerSpec {
    /// The peer's identifier.
    pub peer_id: PeerId,
    /// The address the peer connects from / announces (its IP is what
    /// Section V-A groups by).
    pub addr: Multiaddr,
    /// The initial identify payload.
    pub identify: IdentifyInfo,
    /// Online/offline pattern.
    pub session: SessionPattern,
    /// Dialing and holding behaviour towards the observers.
    pub behavior: DialBehavior,
    /// Scheduled metadata changes (must be sorted by time).
    pub changes: Vec<ScheduledChange>,
    /// Probability that an observer learns about this peer through DHT
    /// routing traffic alone (a Peerstore entry without any connection —
    /// the paper saw ~3.6 k such PIDs).
    pub gossip_visibility: f64,
    /// DHT-protocol conduct (routing-table admission and lookup replies).
    /// Non-honest peers are also excluded from the observers' outbound
    /// maintenance-dial pool: adversarial DHT daemons squat the key space
    /// but do not accept swarm connections, which is what keeps the passive
    /// monitor view byte-identical under DHT-level attacks.
    pub dht_conduct: DhtConduct,
}

impl RemotePeerSpec {
    /// Creates a spec with the given identity and identify payload, default
    /// behaviour, an always-on session and no scheduled changes.
    pub fn new(peer_id: PeerId, addr: Multiaddr, identify: IdentifyInfo) -> Self {
        RemotePeerSpec {
            peer_id,
            addr,
            identify,
            session: SessionPattern::AlwaysOn,
            behavior: DialBehavior::default_peer(),
            changes: Vec::new(),
            gossip_visibility: 0.0,
            dht_conduct: DhtConduct::Honest,
        }
    }

    /// Returns a copy with the given session pattern.
    pub fn with_session(mut self, session: SessionPattern) -> Self {
        self.session = session;
        self
    }

    /// Returns a copy with the given dial behaviour.
    pub fn with_behavior(mut self, behavior: DialBehavior) -> Self {
        self.behavior = behavior;
        self
    }

    /// Returns a copy with the given scheduled metadata changes (sorted by
    /// time internally).
    pub fn with_changes(mut self, mut changes: Vec<ScheduledChange>) -> Self {
        changes.sort_by_key(|c| c.at);
        self.changes = changes;
        self
    }

    /// Returns a copy with the given gossip visibility.
    pub fn with_gossip_visibility(mut self, p: f64) -> Self {
        self.gossip_visibility = p;
        self
    }

    /// Returns a copy with the given DHT conduct.
    pub fn with_dht_conduct(mut self, conduct: DhtConduct) -> Self {
        self.dht_conduct = conduct;
        self
    }

    /// Whether the peer initially announces the DHT-Server role.
    pub fn is_dht_server(&self) -> bool {
        self.identify.is_dht_server()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmodel::{IpAddress, Transport};

    fn spec() -> RemotePeerSpec {
        RemotePeerSpec::new(
            PeerId::derived(1),
            Multiaddr::new(IpAddress::V4(1), Transport::Tcp, 4001),
            IdentifyInfo::new(
                AgentVersion::parse("go-ipfs/0.11.0/"),
                ProtocolSet::go_ipfs_dht_server(),
                Vec::new(),
            ),
        )
    }

    #[test]
    fn always_on_session_spans_whole_run() {
        let mut rng = SimRng::seed_from(1);
        let (start, end) = SessionPattern::AlwaysOn.first_session(&mut rng);
        assert_eq!(start, SimTime::ZERO);
        assert_eq!(end, None);
        assert!(SessionPattern::AlwaysOn.next_session(SimTime::from_secs(10), &mut rng).is_none());
    }

    #[test]
    fn one_shot_session_never_returns() {
        let mut rng = SimRng::seed_from(1);
        let pattern = SessionPattern::OneShot {
            arrival_secs: 100.0,
            stay_secs: 600.0,
        };
        let (start, end) = pattern.first_session(&mut rng);
        assert_eq!(start, SimTime::from_secs(100));
        assert_eq!(end, Some(SimTime::from_secs(700)));
        assert!(pattern.next_session(SimTime::from_secs(700), &mut rng).is_none());
    }

    #[test]
    fn intermittent_sessions_alternate_and_move_forward() {
        let mut rng = SimRng::seed_from(2);
        let pattern = SessionPattern::Intermittent {
            online_median_secs: 3600.0,
            offline_median_secs: 1800.0,
            sigma: 0.5,
            initial_delay_secs: 60.0,
        };
        let (start, end) = pattern.first_session(&mut rng);
        assert_eq!(start, SimTime::from_secs(60));
        let end = end.expect("intermittent sessions end");
        assert!(end > start);
        let (next_start, next_end) = pattern.next_session(end, &mut rng).expect("rejoins");
        assert!(next_start > end);
        assert!(next_end.unwrap() > next_start);
    }

    #[test]
    fn dial_behavior_sampling_respects_role() {
        let mut rng = SimRng::seed_from(3);
        let behavior = DialBehavior {
            dial_server_prob: 1.0,
            dial_client_prob: 0.0,
            ..DialBehavior::default_peer()
        };
        assert!(behavior.dials(true, &mut rng));
        assert!(!behavior.dials(false, &mut rng));
        // Hold times are at least one second and depend on the role medians.
        let hold = behavior.sample_hold(true, &mut rng);
        assert!(hold >= SimDuration::from_secs(1));
        let redial = behavior.sample_redial_delay(&mut rng);
        assert!(redial >= SimDuration::from_secs(1));
    }

    #[test]
    fn spec_builders_sort_changes() {
        let s = spec()
            .with_gossip_visibility(0.5)
            .with_changes(vec![
                ScheduledChange {
                    at: SimTime::from_secs(200),
                    change: MetadataChange::RemoveProtocol("/ipfs/kad/1.0.0".into()),
                },
                ScheduledChange {
                    at: SimTime::from_secs(100),
                    change: MetadataChange::AddProtocol("/ipfs/kad/1.0.0".into()),
                },
            ])
            .with_session(SessionPattern::OneShot {
                arrival_secs: 0.0,
                stay_secs: 10.0,
            })
            .with_behavior(DialBehavior::default_peer());
        assert_eq!(s.changes[0].at, SimTime::from_secs(100));
        assert_eq!(s.changes[1].at, SimTime::from_secs(200));
        assert!(s.is_dht_server());
        assert_eq!(s.gossip_visibility, 0.5);
    }
}
