//! The discrete-event simulation engine.
//!
//! [`Network::run`] consumes a [`NetworkConfig`] and a population of
//! [`RemotePeerSpec`]s and produces the observation log of every measurement
//! node plus the ground truth of what actually happened. The engine models
//! exactly the mechanisms the paper identifies as driving its observations:
//!
//! * remote peers come and go according to their session patterns (node
//!   churn),
//! * remote peers dial DHT-Server observers aggressively and DHT-Client
//!   observers rarely (discoverability),
//! * both sides trim connections: the observer through its real
//!   [`p2pmodel::ConnectionManager`], the remote side through per-peer hold
//!   times (connection churn ≫ node churn),
//! * metadata changes propagate to connected observers via identify push.
//!
//! Observations are emitted through the [`ObservationSink`] trait — the
//! engine never materialises [`crate::ObservedEvent`] values. Identify
//! payloads and multiaddresses are interned once in an [`IdentifyRegistry`];
//! the hot path records 4-byte ids, so an identify push to `k` connected
//! observers costs `k` column appends instead of `k` deep payload clones.

use crate::config::{NetworkConfig, ObserverSpec};
use crate::dht::{DhtLog, DhtTracker};
use crate::events::{GroundTruth, GroundTruthEvent, ObserverLog};
use crate::obs::{IdentifyRegistry, ObservationSink, ObservationTable};
use crate::spec::{PopulationAction, PopulationEvent, RemotePeerSpec};
use p2pmodel::{
    protocol::well_known, CloseReason, ConnectionId, ConnectionManager, Direction,
};
use simclock::{EventQueue, SimRng, SimTime};
use std::collections::HashMap;
use std::sync::Arc;

/// Result of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutput {
    /// One observation log per observer, in the order they were configured.
    pub logs: Vec<ObserverLog>,
    /// Ground truth of the simulated network.
    pub ground_truth: GroundTruth,
    /// Routing-table membership history of the run (empty if tracking was
    /// disabled via [`Network::with_dht_tracking`]).
    pub dht: DhtLog,
    /// Observer name → index into `logs`, built once at construction so
    /// [`Self::log`] is a map lookup instead of a linear name scan.
    by_name: HashMap<String, usize>,
}

impl SimulationOutput {
    fn new(logs: Vec<ObserverLog>, ground_truth: GroundTruth, dht: DhtLog) -> Self {
        let mut by_name = HashMap::with_capacity(logs.len());
        for (idx, log) in logs.iter().enumerate() {
            // First-wins on duplicate names, matching the linear scan this
            // index replaced.
            by_name.entry(log.observer.clone()).or_insert(idx);
        }
        SimulationOutput {
            logs,
            ground_truth,
            dht,
            by_name,
        }
    }

    /// Assembles a simulation output from externally built logs (the tee
    /// pipelines that run [`Network::run_with_sinks`] and re-create the logs
    /// with [`ObserverLog::from_columns`]) plus the run's ground truth and
    /// DHT log.
    pub fn from_logs(logs: Vec<ObserverLog>, ground_truth: GroundTruth, dht: DhtLog) -> Self {
        SimulationOutput::new(logs, ground_truth, dht)
    }

    /// Looks up an observer log by name.
    pub fn log(&self, observer: &str) -> Option<&ObserverLog> {
        self.by_name.get(observer).map(|&idx| &self.logs[idx])
    }
}

/// Result of a simulation run into caller-provided [`ObservationSink`]s.
///
/// Returned by [`Network::run_with_sinks`]; `sinks` are the caller's sinks
/// after the run, in observer-configuration order, and `registry` resolves
/// every peer slot, address id and identify id the sinks were handed.
#[derive(Debug)]
pub struct SinkRun<S> {
    /// The sinks, one per configured observer.
    pub sinks: Vec<S>,
    /// Ground truth of the simulated network.
    pub ground_truth: GroundTruth,
    /// Routing-table membership history of the run.
    pub dht: DhtLog,
    /// The interning registry of the run.
    pub registry: IdentifyRegistry,
    /// When the run ended.
    pub ended_at: SimTime,
}

impl SinkRun<ObservationTable> {
    /// Assembles the classic [`SimulationOutput`] from table sinks: each
    /// table is time-sorted and wrapped into an [`ObserverLog`] over the
    /// run's shared registry. `specs` must be the observer configuration
    /// the run used, in order.
    ///
    /// [`Network::run`] is `run_with_sinks(presized tables)` plus this;
    /// tee pipelines (`TeeSink<ObservationTable, _>`) rebuild a `SinkRun`
    /// from their table halves and reuse the exact same assembly, so both
    /// paths stay byte-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if `specs.len()` differs from the number of sinks.
    pub fn into_output(self, specs: &[ObserverSpec]) -> SimulationOutput {
        assert_eq!(specs.len(), self.sinks.len(), "one spec per sink");
        let registry = Arc::new(self.registry);
        let logs = specs
            .iter()
            .zip(self.sinks)
            .map(|(spec, mut table)| {
                table.stable_sort_by_time();
                ObserverLog::from_columns(
                    spec.name.clone(),
                    spec.peer_id,
                    spec.role.is_server(),
                    SimTime::ZERO,
                    self.ended_at,
                    table,
                    Arc::clone(&registry),
                )
            })
            .collect();
        SimulationOutput::new(logs, self.ground_truth, self.dht)
    }
}

/// Internal scheduler events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SimEvent {
    PeerOnline(usize),
    PeerOffline(usize),
    RemoteDial { peer: usize, observer: usize },
    RemoteClose { conn: ConnectionId, observer: usize },
    Maintenance { observer: usize },
    Metadata { peer: usize, change_idx: usize },
    GossipDiscover { peer: usize, observer: usize },
    Population(usize),
}

/// Per-peer runtime state. Identify payloads live in the registry; the state
/// carries the current payload id plus the bits the hot paths branch on.
struct PeerState {
    online: bool,
    /// Retired peers (rotated-away or scripted leavers) never come back
    /// online, whatever their session pattern says.
    retired: bool,
    /// The peer's registry slot. Usually equal to the engine index, but two
    /// population entries sharing a PeerId (a peer scripted to rejoin with
    /// the same identity) share one slot, so observations attribute to the
    /// same PID — exactly as the enum representation did.
    slot: u32,
    /// Registry id of the peer's *current* identify payload.
    identify_id: u32,
    /// Cached `identify.is_dht_server()` of the current payload.
    is_server: bool,
    /// Registry id of the peer's multiaddress.
    addr_id: u32,
    next_session_end: Option<SimTime>,
    next_change: usize,
}

/// Per-observer runtime state.
struct ObserverState<S> {
    spec: ObserverSpec,
    connmgr: ConnectionManager,
    sink: S,
    /// Open connections: id -> (peer index, direction).
    conn_peer: HashMap<ConnectionId, (usize, Direction)>,
    /// Open connection per peer (at most one per peer/observer pair).
    peer_conn: HashMap<usize, ConnectionId>,
    outbound_open: usize,
}

/// Membership structure for sampling random online DHT-Servers in O(1).
#[derive(Default)]
struct OnlineServers {
    list: Vec<usize>,
    pos: HashMap<usize, usize>,
}

impl OnlineServers {
    fn with_capacity(n: usize) -> Self {
        OnlineServers {
            list: Vec::with_capacity(n),
            pos: HashMap::with_capacity(n),
        }
    }

    fn insert(&mut self, peer: usize) {
        if self.pos.contains_key(&peer) {
            return;
        }
        self.pos.insert(peer, self.list.len());
        self.list.push(peer);
    }

    fn remove(&mut self, peer: usize) {
        if let Some(idx) = self.pos.remove(&peer) {
            let last = self.list.len() - 1;
            self.list.swap(idx, last);
            self.list.pop();
            if idx < self.list.len() {
                let moved = self.list[idx];
                self.pos.insert(moved, idx);
            }
        }
    }

    fn sample(&self, rng: &mut SimRng) -> Option<usize> {
        if self.list.is_empty() {
            None
        } else {
            Some(self.list[rng.index(self.list.len())])
        }
    }
}

/// The simulated network: configuration plus population.
///
/// # Example
///
/// ```
/// use netsim::{DhtRole, Network, NetworkConfig, ObserverSpec, RemotePeerSpec};
/// use p2pmodel::{AgentVersion, ConnLimits, IdentifyInfo, IpAddress, Multiaddr, PeerId, ProtocolSet};
/// use simclock::SimDuration;
///
/// let observer = ObserverSpec::new("go-ipfs", PeerId::derived(0), DhtRole::Server, ConnLimits::new(50, 80));
/// let config = NetworkConfig::single_observer(7, SimDuration::from_hours(1), observer);
/// let peers: Vec<RemotePeerSpec> = (1..20)
///     .map(|i| {
///         RemotePeerSpec::new(
///             PeerId::derived(i),
///             Multiaddr::default_swarm(IpAddress::V4(i as u32)),
///             IdentifyInfo::new(
///                 AgentVersion::parse("go-ipfs/0.11.0/"),
///                 ProtocolSet::go_ipfs_dht_server(),
///                 Vec::new(),
///             ),
///         )
///     })
///     .collect();
/// let output = Network::new(config, peers).run();
/// assert_eq!(output.logs.len(), 1);
/// assert!(!output.logs[0].is_empty());
/// ```
pub struct Network {
    config: NetworkConfig,
    peers: Vec<RemotePeerSpec>,
    population_events: Vec<PopulationEvent>,
    dht_tracking: bool,
}

impl Network {
    /// Creates a network from a configuration and a population.
    pub fn new(config: NetworkConfig, peers: Vec<RemotePeerSpec>) -> Self {
        Network {
            config,
            peers,
            population_events: Vec::new(),
            dht_tracking: true,
        }
    }

    /// Enables or disables routing-table tracking (on by default). The
    /// tracker consumes no engine randomness, so toggling it never changes
    /// the observation logs — the scale harness turns it off to measure pure
    /// engine throughput at million-peer populations.
    pub fn with_dht_tracking(mut self, enabled: bool) -> Self {
        self.dht_tracking = enabled;
        self
    }

    /// Adds a scripted stream of mid-run population mutations (scenario
    /// churn: join/leave/rotate batches). Events must be sorted by time;
    /// same-time events apply in stream order.
    pub fn with_population_events(mut self, events: Vec<PopulationEvent>) -> Self {
        self.population_events = events;
        self
    }

    /// Number of peers in the initial population (scripted joins excluded).
    pub fn population_size(&self) -> usize {
        self.peers.len()
    }

    /// Runs the simulation to completion and returns the observation logs and
    /// ground truth.
    pub fn run(self) -> SimulationOutput {
        let sinks: Vec<ObservationTable> = self
            .config
            .observers
            .iter()
            .map(ObserverSpec::presized_table)
            .collect();
        let specs: Vec<ObserverSpec> = self.config.observers.clone();
        self.run_with_sinks(sinks).into_output(&specs)
    }

    /// Runs the simulation, emitting every observation into the caller's
    /// sinks (one per configured observer, in configuration order).
    ///
    /// This is the raw columnar entry point: no [`ObserverLog`]s are built
    /// and nothing is buffered beyond what the sinks keep. The scale harness
    /// uses it with [`crate::CountingSink`]s to measure pure engine
    /// throughput.
    ///
    /// # Panics
    ///
    /// Panics if `sinks.len()` differs from the number of configured
    /// observers.
    pub fn run_with_sinks<S: ObservationSink>(self, sinks: Vec<S>) -> SinkRun<S> {
        assert_eq!(
            sinks.len(),
            self.config.observers.len(),
            "one sink per configured observer"
        );
        Runner::new(
            self.config,
            self.peers,
            self.population_events,
            sinks,
            self.dht_tracking,
        )
        .run()
    }
}

struct Runner<S> {
    end: SimTime,
    rng: SimRng,
    queue: EventQueue<SimEvent>,
    peers: Vec<RemotePeerSpec>,
    peer_states: Vec<PeerState>,
    peer_index: HashMap<p2pmodel::PeerId, usize>,
    observers: Vec<ObserverState<S>>,
    online_servers: OnlineServers,
    ground_truth: GroundTruth,
    dht: DhtTracker,
    population_events: Vec<PopulationEvent>,
    registry: IdentifyRegistry,
    next_conn_id: u64,
}

impl<S: ObservationSink> Runner<S> {
    fn new(
        config: NetworkConfig,
        peers: Vec<RemotePeerSpec>,
        population_events: Vec<PopulationEvent>,
        sinks: Vec<S>,
        dht_tracking: bool,
    ) -> Self {
        let end = config.end_time();
        let rng = SimRng::seed_from(config.seed);
        let mut registry = IdentifyRegistry::with_capacity(peers.len());
        let peer_states = peers
            .iter()
            .map(|spec| {
                PeerState {
                    online: false,
                    retired: false,
                    slot: registry.register_peer(spec.peer_id),
                    identify_id: registry.intern_identify(&spec.identify),
                    is_server: spec.identify.is_dht_server(),
                    addr_id: registry.intern_addr(spec.addr),
                    next_session_end: None,
                    next_change: 0,
                }
            })
            .collect();
        let peer_index = peers
            .iter()
            .enumerate()
            .map(|(idx, spec)| (spec.peer_id, idx))
            .collect();
        let observers = config
            .observers
            .iter()
            .cloned()
            .zip(sinks)
            .map(|(spec, sink)| {
                let expected_conns = spec.expected_connections();
                ObserverState {
                    connmgr: ConnectionManager::new(spec.limits),
                    sink,
                    conn_peer: HashMap::with_capacity(expected_conns),
                    peer_conn: HashMap::with_capacity(expected_conns),
                    outbound_open: 0,
                    spec,
                }
            })
            .collect();
        let ground_truth = GroundTruth {
            peers: peers
                .iter()
                .map(|p| (p.peer_id, p.is_dht_server()))
                .collect(),
            // Every peer produces at least one online event; churny
            // populations produce a few sessions each.
            events: Vec::with_capacity(peers.len() * 2),
        };
        let population = peers.len();
        let mut dht = if dht_tracking {
            DhtTracker::new(p2pmodel::kademlia::DEFAULT_BUCKET_SIZE)
        } else {
            DhtTracker::disabled()
        };
        for spec in &peers {
            if !spec.dht_conduct.is_honest() {
                dht.set_conduct(spec.peer_id, spec.dht_conduct);
            }
        }
        // Server observers are the network's bootstrap peers: online from
        // time zero, and every crawl seeds its candidate set there.
        for spec in &config.observers {
            if spec.role.is_server() {
                dht.register_bootstrap(spec.peer_id);
            }
        }
        Runner {
            end,
            rng,
            queue: EventQueue::new(),
            peers,
            peer_states,
            peer_index,
            observers,
            online_servers: OnlineServers::with_capacity(population),
            ground_truth,
            dht,
            population_events,
            registry,
            next_conn_id: 0,
        }
    }

    fn run(mut self) -> SinkRun<S> {
        self.schedule_initial_events();
        while let Some((now, event)) = self.queue.pop_until(self.end) {
            self.handle(now, event);
        }
        self.finish()
    }

    fn schedule_initial_events(&mut self) {
        // Large populations schedule one session start plus all metadata
        // changes per peer up front — collect everything and heapify once via
        // `schedule_batch` instead of paying O(log n) per event. The batch is
        // built in exactly the order the events used to be scheduled in, so
        // FIFO tie-breaking (and therefore every trace) is unchanged.
        let change_count: usize = self.peers.iter().map(|p| p.changes.len()).sum();
        let mut batch: Vec<(SimTime, SimEvent)> =
            Vec::with_capacity(self.peers.len() + change_count + self.observers.len());
        for idx in 0..self.peers.len() {
            let (start, session_end) = {
                let spec = &self.peers[idx];
                spec.session.first_session(&mut self.rng)
            };
            self.peer_states[idx].next_session_end = session_end;
            batch.push((start, SimEvent::PeerOnline(idx)));

            for (change_idx, change) in self.peers[idx].changes.iter().enumerate() {
                batch.push((
                    change.at,
                    SimEvent::Metadata {
                        peer: idx,
                        change_idx,
                    },
                ));
            }
        }
        for (idx, event) in self.population_events.iter().enumerate() {
            batch.push((event.at, SimEvent::Population(idx)));
        }
        for obs_idx in 0..self.observers.len() {
            let interval = self.observers[obs_idx].spec.maintenance_interval;
            batch.push((
                SimTime::ZERO + interval,
                SimEvent::Maintenance { observer: obs_idx },
            ));
            // Gossip discovery: some peers become Peerstore entries without a
            // connection, at a random point of the run.
            for peer_idx in 0..self.peers.len() {
                let visibility = self.peers[peer_idx].gossip_visibility;
                if visibility > 0.0 && self.rng.chance(visibility) {
                    let at = SimTime::from_millis(self.rng.uniform_u64(0, self.end.as_millis().max(1)));
                    batch.push((
                        at,
                        SimEvent::GossipDiscover {
                            peer: peer_idx,
                            observer: obs_idx,
                        },
                    ));
                }
            }
        }
        self.queue.schedule_batch(batch);
    }

    fn handle(&mut self, now: SimTime, event: SimEvent) {
        match event {
            SimEvent::PeerOnline(peer) => self.handle_peer_online(now, peer),
            SimEvent::PeerOffline(peer) => self.handle_peer_offline(now, peer),
            SimEvent::RemoteDial { peer, observer } => self.handle_remote_dial(now, peer, observer),
            SimEvent::RemoteClose { conn, observer } => {
                self.handle_remote_close(now, conn, observer)
            }
            SimEvent::Maintenance { observer } => self.handle_maintenance(now, observer),
            SimEvent::Metadata { peer, change_idx } => self.handle_metadata(now, peer, change_idx),
            SimEvent::GossipDiscover { peer, observer } => {
                self.handle_gossip(now, peer, observer)
            }
            SimEvent::Population(idx) => self.handle_population(now, idx),
        }
    }

    fn handle_peer_online(&mut self, now: SimTime, peer: usize) {
        if self.peer_states[peer].online || self.peer_states[peer].retired {
            return;
        }
        self.peer_states[peer].online = true;
        self.ground_truth.events.push(GroundTruthEvent::PeerOnline {
            at: now,
            peer: self.peers[peer].peer_id,
        });
        if self.peer_states[peer].is_server {
            // Non-honest peers squat the DHT but refuse swarm connections:
            // they never enter the observers' maintenance-dial pool, so the
            // passive view stays byte-identical under DHT-level attacks.
            if self.peers[peer].dht_conduct.is_honest() {
                self.online_servers.insert(peer);
            }
            self.dht.server_up(now, self.peers[peer].peer_id);
        }
        if let Some(end) = self.peer_states[peer].next_session_end {
            self.queue.schedule(end, SimEvent::PeerOffline(peer));
        }
        // Decide, per observer, whether this peer will dial it this session.
        for obs_idx in 0..self.observers.len() {
            let observer_is_server = self.observers[obs_idx].spec.role.is_server();
            let dials = {
                let behavior = &self.peers[peer].behavior;
                behavior.dials(observer_is_server, &mut self.rng)
            };
            if dials {
                let delay = self.peers[peer].behavior.sample_redial_delay(&mut self.rng);
                self.queue.schedule(
                    now + delay,
                    SimEvent::RemoteDial {
                        peer,
                        observer: obs_idx,
                    },
                );
            }
        }
    }

    fn handle_peer_offline(&mut self, now: SimTime, peer: usize) {
        if !self.peer_states[peer].online {
            return;
        }
        self.peer_states[peer].online = false;
        self.online_servers.remove(peer);
        // Departure first drops the peer's own table and evicts it from every
        // table that holds it; the connection closes below then find nothing
        // left to evict.
        self.dht.server_down(now, self.peers[peer].peer_id);
        self.ground_truth.events.push(GroundTruthEvent::PeerOffline {
            at: now,
            peer: self.peers[peer].peer_id,
        });
        // Close all connections this peer has with any observer.
        for obs_idx in 0..self.observers.len() {
            if let Some(conn) = self.observers[obs_idx].peer_conn.get(&peer).copied() {
                self.close_connection(now, obs_idx, conn, CloseReason::PeerLeft, false);
            }
        }
        // Schedule the next session, if the pattern rejoins (retired peers
        // never do — a rotated-away PID must not resurrect).
        if self.peer_states[peer].retired {
            return;
        }
        let next = {
            let spec = &self.peers[peer];
            spec.session.next_session(now, &mut self.rng)
        };
        if let Some((start, end)) = next {
            self.peer_states[peer].next_session_end = end;
            self.queue.schedule(start, SimEvent::PeerOnline(peer));
        }
    }

    fn handle_population(&mut self, now: SimTime, idx: usize) {
        // Move the action out so the (possibly large) join batches and
        // retirement lists are owned, not cloned; each population event fires
        // exactly once.
        let action = std::mem::replace(
            &mut self.population_events[idx].action,
            PopulationAction::Leave(Vec::new()),
        );
        match action {
            PopulationAction::Join(specs) => self.admit_peers(now, specs),
            PopulationAction::Leave(peers) => self.retire_peers(now, peers),
            PopulationAction::Rotate { retire, join } => {
                self.retire_peers(now, retire);
                self.admit_peers(now, join);
            }
        }
    }

    /// Adds new peers to the running simulation. Session patterns and
    /// metadata-change schedules are interpreted relative to `now`.
    fn admit_peers(&mut self, now: SimTime, specs: Vec<RemotePeerSpec>) {
        for spec in specs {
            let idx = self.peers.len();
            if !spec.dht_conduct.is_honest() {
                self.dht.set_conduct(spec.peer_id, spec.dht_conduct);
            }
            self.ground_truth.peers.push((spec.peer_id, spec.is_dht_server()));
            self.peer_index.insert(spec.peer_id, idx);
            let (start, session_end) = spec.session.first_session(&mut self.rng);
            let start = now + (start - SimTime::ZERO);
            let session_end = session_end.map(|end| now + (end - SimTime::ZERO));
            self.peer_states.push(PeerState {
                online: false,
                retired: false,
                slot: self.registry.register_peer(spec.peer_id),
                identify_id: self.registry.intern_identify(&spec.identify),
                is_server: spec.identify.is_dht_server(),
                addr_id: self.registry.intern_addr(spec.addr),
                next_session_end: session_end,
                next_change: 0,
            });
            self.queue.schedule(start, SimEvent::PeerOnline(idx));
            for (change_idx, change) in spec.changes.iter().enumerate() {
                self.queue.schedule(
                    now + (change.at - SimTime::ZERO),
                    SimEvent::Metadata {
                        peer: idx,
                        change_idx,
                    },
                );
            }
            // Gossip discovery, as in the initial batch, over the rest of
            // the run.
            let visibility = spec.gossip_visibility;
            for obs_idx in 0..self.observers.len() {
                if visibility > 0.0 && self.rng.chance(visibility) && now < self.end {
                    let at = SimTime::from_millis(self.rng.uniform_u64(
                        now.as_millis(),
                        self.end.as_millis().max(now.as_millis() + 1),
                    ));
                    self.queue.schedule(
                        at,
                        SimEvent::GossipDiscover {
                            peer: idx,
                            observer: obs_idx,
                        },
                    );
                }
            }
            self.peers.push(spec);
        }
    }

    /// Permanently retires the named peers: forces them offline and blocks
    /// any future session of theirs. Unknown PIDs are ignored.
    fn retire_peers(&mut self, now: SimTime, peers: Vec<p2pmodel::PeerId>) {
        for peer_id in peers {
            let Some(&idx) = self.peer_index.get(&peer_id) else {
                continue;
            };
            if self.peer_states[idx].retired {
                continue;
            }
            self.peer_states[idx].retired = true;
            // Force the peer offline through the regular path so connections
            // close with PeerLeft and ground truth records the departure;
            // `retired` suppresses the rejoin scheduling.
            self.handle_peer_offline(now, idx);
        }
    }

    fn handle_remote_dial(&mut self, now: SimTime, peer: usize, observer: usize) {
        if !self.peer_states[peer].online {
            return;
        }
        if self.observers[observer].peer_conn.contains_key(&peer) {
            return;
        }
        self.open_connection(now, observer, peer, Direction::Inbound);
    }

    fn handle_remote_close(&mut self, now: SimTime, conn: ConnectionId, observer: usize) {
        if !self.observers[observer].conn_peer.contains_key(&conn) {
            return;
        }
        self.close_connection(now, observer, conn, CloseReason::TrimmedRemote, true);
    }

    fn handle_maintenance(&mut self, now: SimTime, observer: usize) {
        // Outbound dialing: the observer maintains a modest number of
        // outbound connections for DHT routing (bootstrap, bucket refresh).
        let target = self.observers[observer].spec.outbound_target;
        let mut budget = 4usize;
        while budget > 0 && self.observers[observer].outbound_open < target {
            let Some(peer) = self.online_servers.sample(&mut self.rng) else {
                break;
            };
            if self.observers[observer].peer_conn.contains_key(&peer) {
                budget -= 1;
                continue;
            }
            self.open_connection(now, observer, peer, Direction::Outbound);
            budget -= 1;
        }

        // Trim check: the observer's own connection manager.
        let decision = self.observers[observer].connmgr.maybe_trim(now);
        for conn in decision.to_close {
            self.close_connection(now, observer, conn, CloseReason::TrimmedLocal, true);
        }

        // Next maintenance pass.
        let interval = self.observers[observer].spec.maintenance_interval;
        let next = now + interval;
        if next <= self.end {
            self.queue
                .schedule(next, SimEvent::Maintenance { observer });
        }
    }

    fn handle_metadata(&mut self, now: SimTime, peer: usize, change_idx: usize) {
        if change_idx != self.peer_states[peer].next_change {
            // Changes are applied strictly in order; out-of-order events can
            // only happen if the spec listed duplicate timestamps, in which
            // case the queue's FIFO tie-break keeps them ordered anyway.
        }
        let Some(scheduled) = self.peers[peer].changes.get(change_idx) else {
            return;
        };
        let was_server = self.peer_states[peer].is_server;
        // Metadata changes are rare (a handful per peer per run): clone the
        // current payload out of the registry, apply the change and intern
        // the result. The per-push hot path below only moves the id.
        let mut identify = self
            .registry
            .identify(self.peer_states[peer].identify_id)
            .clone();
        scheduled.change.apply(&mut identify);
        let is_server = identify.is_dht_server();
        let payload_id = self.registry.intern_identify(&identify);
        self.peer_states[peer].identify_id = payload_id;
        self.peer_states[peer].is_server = is_server;
        self.peer_states[peer].next_change = change_idx + 1;
        if was_server != is_server {
            self.ground_truth.events.push(GroundTruthEvent::RoleChanged {
                at: now,
                peer: self.peers[peer].peer_id,
                dht_server: is_server,
            });
            if self.peer_states[peer].online {
                if is_server {
                    if self.peers[peer].dht_conduct.is_honest() {
                        self.online_servers.insert(peer);
                    }
                    self.dht.server_up(now, self.peers[peer].peer_id);
                } else {
                    self.online_servers.remove(peer);
                    self.dht.server_down(now, self.peers[peer].peer_id);
                }
            }
        }
        // Identify push to every observer currently connected to the peer:
        // one 4-byte id per observer, no payload clones.
        let slot = self.peer_states[peer].slot;
        for obs in &mut self.observers {
            if obs.peer_conn.contains_key(&peer) {
                obs.sink.identify_received(now, slot, payload_id);
            }
        }
    }

    fn handle_gossip(&mut self, now: SimTime, peer: usize, observer: usize) {
        // Routing gossip about a permanently departed peer stops circulating;
        // without this guard a pre-scheduled discovery could resurrect a
        // retired PID in the observer's Peerstore.
        if self.peer_states[peer].retired {
            return;
        }
        let addr_id = self.peer_states[peer].addr_id;
        let slot = self.peer_states[peer].slot;
        self.observers[observer].sink.peer_discovered(now, slot, addr_id);
        // Routing gossip carries the peer into the observer's own table (it
        // may be a stale entry if the peer is offline — exactly the staleness
        // a real crawler has to dial through).
        if self.peer_states[peer].is_server {
            let observer_id = self.observers[observer].spec.peer_id;
            self.dht.admit(now, observer_id, self.peers[peer].peer_id);
        }
    }

    fn open_connection(&mut self, now: SimTime, observer: usize, peer: usize, direction: Direction) {
        let conn = ConnectionId(self.next_conn_id);
        self.next_conn_id += 1;
        let peer_id = self.peers[peer].peer_id;
        let addr_id = self.peer_states[peer].addr_id;
        let slot = self.peer_states[peer].slot;

        let obs = &mut self.observers[observer];
        obs.sink
            .connection_opened(now, conn, slot, direction, addr_id);
        obs.conn_peer.insert(conn, (peer, direction));
        obs.peer_conn.insert(peer, conn);
        if direction == Direction::Outbound {
            obs.outbound_open += 1;
        }
        obs.connmgr.track(conn, peer_id, now);

        // Value tagging: DHT-Servers are worth keeping (they answer routing
        // queries), plus whatever archetype-specific value the population
        // assigned. Outbound connections are the observer's own routing
        // contacts and are protected like go-ipfs protects bootstrap peers.
        let mut value = self.peers[peer].behavior.observer_value;
        if self.peer_states[peer].is_server {
            value += 10;
        }
        obs.connmgr.tag(conn, value);
        if direction == Direction::Outbound {
            obs.connmgr.protect(conn);
        }

        // A dial is how the observer learns the peer is a live DHT contact.
        if self.peer_states[peer].is_server {
            let observer_id = self.observers[observer].spec.peer_id;
            self.dht.admit(now, observer_id, peer_id);
        }

        // Identify exchange.
        let identify_prob = self.peers[peer].behavior.identify_prob;
        if self.rng.chance(identify_prob) {
            let payload_id = self.peer_states[peer].identify_id;
            self.observers[observer]
                .sink
                .identify_received(now, slot, payload_id);
        }

        // The remote side will eventually trim the connection (or the peer
        // goes offline first, handled by PeerOffline). Connections the remote
        // peer initiated are ones it wanted and values; connections *we*
        // dialed are unsolicited from its point of view and get the
        // lower-value hold time — which is why the paper observes shorter
        // outbound than inbound durations.
        let observer_is_server = self.observers[observer].spec.role.is_server();
        let valued_by_remote = observer_is_server && direction == Direction::Inbound;
        let hold = self.peers[peer]
            .behavior
            .sample_hold(valued_by_remote, &mut self.rng);
        self.queue
            .schedule(now + hold, SimEvent::RemoteClose { conn, observer });
    }

    fn close_connection(
        &mut self,
        now: SimTime,
        observer: usize,
        conn: ConnectionId,
        reason: CloseReason,
        maybe_reconnect: bool,
    ) {
        let obs = &mut self.observers[observer];
        let Some((peer, direction)) = obs.conn_peer.remove(&conn) else {
            return;
        };
        obs.peer_conn.remove(&peer);
        if direction == Direction::Outbound {
            obs.outbound_open = obs.outbound_open.saturating_sub(1);
        }
        // The manager may or may not still track the connection (it already
        // dropped it if the close came from a local trim).
        obs.connmgr.untrack(conn);
        let slot = self.peer_states[peer].slot;
        obs.sink.connection_closed(now, conn, slot, reason);
        // Losing the connection drops the peer from the observer's table —
        // go-ipfs evicts disconnected contacts on the next bucket refresh.
        let observer_id = self.observers[observer].spec.peer_id;
        self.dht
            .evict(now, observer_id, self.peers[peer].peer_id);

        // Only the remote side re-establishes *inbound* connections; lost
        // outbound connections are replaced by the observer's own maintenance
        // dialing (not necessarily to the same peer).
        if maybe_reconnect
            && direction == Direction::Inbound
            && self.peer_states[peer].online
            && self.peers[peer].behavior.reconnect
        {
            let delay = self.peers[peer].behavior.sample_redial_delay(&mut self.rng);
            self.queue.schedule(
                now + delay,
                SimEvent::RemoteDial {
                    peer,
                    observer,
                },
            );
        }
    }

    fn finish(mut self) -> SinkRun<S> {
        let end = self.end;
        // Close everything still open; the paper counts connections still
        // active at the end of a measurement as closed at that moment.
        for obs_idx in 0..self.observers.len() {
            let mut open: Vec<ConnectionId> =
                self.observers[obs_idx].conn_peer.keys().copied().collect();
            open.sort();
            for conn in open {
                self.close_connection(end, obs_idx, conn, CloseReason::MeasurementEnd, false);
            }
        }
        self.ground_truth.events.sort_by_key(|e| e.at());
        SinkRun {
            sinks: self.observers.into_iter().map(|obs| obs.sink).collect(),
            ground_truth: self.ground_truth,
            dht: self.dht.into_log(),
            registry: self.registry,
            ended_at: end,
        }
    }
}

/// Convenience: the protocol toggled by DHT role switches; re-exported here
/// so population builders and tests do not need to import `p2pmodel`
/// internals.
pub const KAD_PROTOCOL: &str = well_known::KAD;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DhtRole, ObserverSpec};
    use crate::spec::MetadataChange;
    use crate::events::ObservedEvent;
    use crate::obs::CountingSink;
    use crate::spec::{DialBehavior, ScheduledChange, SessionPattern};
    use p2pmodel::{AgentVersion, ConnLimits, IdentifyInfo, IpAddress, Multiaddr, PeerId, ProtocolSet};
    use simclock::SimDuration;

    fn server_identify() -> IdentifyInfo {
        IdentifyInfo::new(
            AgentVersion::parse("go-ipfs/0.11.0/"),
            ProtocolSet::go_ipfs_dht_server(),
            Vec::new(),
        )
    }

    fn peer(i: u64) -> RemotePeerSpec {
        RemotePeerSpec::new(
            PeerId::derived(i),
            Multiaddr::default_swarm(IpAddress::V4(i as u32 + 1)),
            server_identify(),
        )
    }

    fn observer(limits: ConnLimits, role: DhtRole) -> ObserverSpec {
        ObserverSpec::new("obs", PeerId::derived(1_000_000), role, limits)
    }

    fn run(
        peers: Vec<RemotePeerSpec>,
        limits: ConnLimits,
        role: DhtRole,
        hours: u64,
        seed: u64,
    ) -> SimulationOutput {
        let config = NetworkConfig::single_observer(
            seed,
            SimDuration::from_hours(hours),
            observer(limits, role),
        );
        Network::new(config, peers).run()
    }

    #[test]
    fn every_open_has_a_matching_close() {
        let peers: Vec<_> = (0..50).map(peer).collect();
        let output = run(peers, ConnLimits::new(10, 20), DhtRole::Server, 2, 1);
        let log = &output.logs[0];
        let mut open = 0i64;
        let mut opens = 0;
        let mut closes = 0;
        for event in log.events() {
            match event {
                ObservedEvent::ConnectionOpened { .. } => {
                    open += 1;
                    opens += 1;
                }
                ObservedEvent::ConnectionClosed { .. } => {
                    open -= 1;
                    closes += 1;
                }
                _ => {}
            }
        }
        assert!(opens > 0, "simulation should produce connections");
        assert_eq!(opens, closes, "every connection must eventually close");
        assert_eq!(open, 0);
    }

    #[test]
    fn connection_count_respects_trimming_pressure() {
        let peers: Vec<_> = (0..200)
            .map(|i| {
                peer(i).with_behavior(DialBehavior {
                    // Long remote holds so only the local manager trims.
                    hold_server_median_secs: 100_000.0,
                    hold_sigma: 0.1,
                    redial_median_secs: 30.0,
                    ..DialBehavior::default_peer()
                })
            })
            .collect();
        let output = run(peers, ConnLimits::new(20, 40), DhtRole::Server, 3, 2);
        let log = &output.logs[0];
        // Reconstruct the simultaneous connection count right after every
        // maintenance pass; it must return to at most HighWater shortly after
        // each trim. We check the count at the end of the run is bounded by
        // HighWater plus the dials that can arrive within one interval.
        let conns = log.connections();
        assert!(!conns.is_empty());
        let still_open_before_end = conns
            .iter()
            .filter(|c| {
                c.close_reason() == Some(CloseReason::MeasurementEnd)
            })
            .count();
        assert!(
            still_open_before_end <= 40 + 200,
            "local trimming must keep the connection count near the watermarks"
        );
        // Local trims must actually have happened.
        let local_trims = conns
            .iter()
            .filter(|c| c.close_reason() == Some(CloseReason::TrimmedLocal))
            .count();
        assert!(local_trims > 0, "expected local connection trimming");
    }

    #[test]
    fn dht_client_observer_attracts_far_fewer_inbound_dials() {
        let make_peers = || (0..300).map(peer).collect::<Vec<_>>();
        let as_server = run(make_peers(), ConnLimits::new(1000, 2000), DhtRole::Server, 2, 3);
        let as_client = run(make_peers(), ConnLimits::new(1000, 2000), DhtRole::Client, 2, 3);
        // Count distinct peers that dialed *us* (inbound) — the measure of how
        // attractive the observer is to the rest of the network. The client
        // observer is not discoverable via the DHT, so almost nobody dials it.
        let inbound_peers = |output: &SimulationOutput| {
            let mut peers: Vec<_> = output.logs[0]
                .connections()
                .into_iter()
                .filter(|c| c.direction == Direction::Inbound)
                .map(|c| c.peer)
                .collect();
            peers.sort();
            peers.dedup();
            peers.len()
        };
        let server_inbound = inbound_peers(&as_server);
        let client_inbound = inbound_peers(&as_client);
        assert!(
            client_inbound < server_inbound / 2,
            "client observer ({client_inbound}) should attract far fewer inbound dialers than server ({server_inbound})"
        );
    }

    #[test]
    fn one_shot_peers_do_not_return() {
        let peers: Vec<_> = (0..20)
            .map(|i| {
                peer(i).with_session(SessionPattern::OneShot {
                    arrival_secs: 60.0,
                    stay_secs: 120.0,
                })
            })
            .collect();
        let output = run(peers, ConnLimits::new(100, 200), DhtRole::Server, 2, 4);
        // After the one-shot sessions end there must be no online peers.
        let online = output.ground_truth.online_at(SimTime::from_hours(1));
        assert!(online.is_empty());
        // And each peer has exactly one online and one offline event.
        let onlines = output
            .ground_truth
            .events
            .iter()
            .filter(|e| matches!(e, GroundTruthEvent::PeerOnline { .. }))
            .count();
        let offlines = output
            .ground_truth
            .events
            .iter()
            .filter(|e| matches!(e, GroundTruthEvent::PeerOffline { .. }))
            .count();
        assert_eq!(onlines, 20);
        assert_eq!(offlines, 20);
    }

    #[test]
    fn metadata_changes_reach_connected_observers_and_ground_truth() {
        let mut p = peer(0).with_behavior(DialBehavior {
            hold_server_median_secs: 100_000.0,
            hold_sigma: 0.1,
            redial_median_secs: 5.0,
            ..DialBehavior::default_peer()
        });
        p = p.with_changes(vec![ScheduledChange {
            at: SimTime::from_secs(1800),
            change: MetadataChange::RemoveProtocol(KAD_PROTOCOL.to_string()),
        }]);
        let output = run(vec![p], ConnLimits::new(100, 200), DhtRole::Server, 1, 5);
        let log = &output.logs[0];
        // The observer must have received at least two identify payloads: one
        // at connection open (server role) and one push after the change.
        let identifies: Vec<IdentifyInfo> = log
            .events()
            .filter_map(|e| match e {
                ObservedEvent::IdentifyReceived { info, .. } => Some(info),
                _ => None,
            })
            .collect();
        assert!(identifies.len() >= 2, "expected identify push after role change");
        assert!(identifies.first().unwrap().is_dht_server());
        assert!(!identifies.last().unwrap().is_dht_server());
        // Both payload versions are interned exactly once.
        assert_eq!(log.registry().identify_count(), 2);
        // Ground truth records the role change.
        assert!(output
            .ground_truth
            .events
            .iter()
            .any(|e| matches!(e, GroundTruthEvent::RoleChanged { dht_server: false, .. })));
    }

    #[test]
    fn gossip_discovery_produces_connectionless_peerstore_entries() {
        // DHT-Client peers that never dial anyone: the only way the observer
        // can learn about them is through routing gossip.
        let peers: Vec<_> = (0..50)
            .map(|i| {
                RemotePeerSpec::new(
                    PeerId::derived(i),
                    Multiaddr::default_swarm(IpAddress::V4(i as u32 + 1)),
                    IdentifyInfo::new(
                        AgentVersion::parse("go-ipfs/0.11.0/"),
                        ProtocolSet::go_ipfs_dht_client(),
                        Vec::new(),
                    ),
                )
                .with_behavior(DialBehavior {
                    dial_server_prob: 0.0,
                    dial_client_prob: 0.0,
                    ..DialBehavior::default_peer()
                })
                .with_gossip_visibility(1.0)
            })
            .collect();
        let output = run(peers, ConnLimits::new(100, 200), DhtRole::Server, 1, 6);
        let log = &output.logs[0];
        let discovered = log
            .events()
            .filter(|e| matches!(e, ObservedEvent::PeerDiscovered { .. }))
            .count();
        assert_eq!(discovered, 50);
        assert!(log.connections().is_empty(), "no peer should have dialed");
    }

    #[test]
    fn same_seed_reproduces_identical_logs() {
        let make = || (0..40).map(peer).collect::<Vec<_>>();
        let a = run(make(), ConnLimits::new(10, 20), DhtRole::Server, 1, 42);
        let b = run(make(), ConnLimits::new(10, 20), DhtRole::Server, 1, 42);
        assert_eq!(a.logs[0], b.logs[0]);
        assert_eq!(a.logs[0].table().checksum(), b.logs[0].table().checksum());
        assert_eq!(a.ground_truth, b.ground_truth);

        let c = run(make(), ConnLimits::new(10, 20), DhtRole::Server, 1, 43);
        assert_ne!(a.logs[0], c.logs[0], "different seeds should differ");
    }

    #[test]
    fn events_are_chronological_and_within_run_bounds() {
        let peers: Vec<_> = (0..60).map(peer).collect();
        let output = run(peers, ConnLimits::new(10, 30), DhtRole::Server, 2, 7);
        let log = &output.logs[0];
        assert!(log.table().is_sorted_by_time());
        let mut prev = SimTime::ZERO;
        for event in log.events() {
            assert!(event.at() >= prev);
            assert!(event.at() <= log.ended_at);
            prev = event.at();
        }
    }

    #[test]
    fn outbound_connections_exist_but_are_a_minority() {
        let peers: Vec<_> = (0..200).map(peer).collect();
        let output = run(peers, ConnLimits::new(500, 900), DhtRole::Server, 2, 8);
        let conns = output.logs[0].connections();
        let outbound = conns.iter().filter(|c| c.direction == Direction::Outbound).count();
        let inbound = conns.iter().filter(|c| c.direction == Direction::Inbound).count();
        assert!(outbound > 0, "observer should dial some peers");
        assert!(
            inbound > outbound,
            "passive nodes receive vastly more inbound than outbound connections"
        );
    }

    #[test]
    fn joined_peers_appear_and_connect_after_the_batch() {
        let config = NetworkConfig::single_observer(
            21,
            SimDuration::from_hours(2),
            observer(ConnLimits::new(100, 200), DhtRole::Server),
        );
        let late: Vec<_> = (100..120).map(peer).collect();
        let late_ids: Vec<PeerId> = late.iter().map(|p| p.peer_id).collect();
        let output = Network::new(config, (0..10).map(peer).collect())
            .with_population_events(vec![PopulationEvent {
                at: SimTime::from_hours(1),
                action: PopulationAction::Join(late),
            }])
            .run();
        assert_eq!(output.ground_truth.population_size(), 30);
        // No event involving a late peer may predate the batch.
        for event in output.logs[0].events() {
            if late_ids.contains(&event.peer()) {
                assert!(event.at() >= SimTime::from_hours(1));
            }
        }
        // And the late peers do connect.
        let connected: Vec<_> = output.logs[0]
            .connections()
            .into_iter()
            .filter(|c| late_ids.contains(&c.peer))
            .collect();
        assert!(!connected.is_empty(), "joined peers must dial the observer");
    }

    #[test]
    fn left_peers_never_return() {
        let victims: Vec<PeerId> = (0..10).map(PeerId::derived).collect();
        let config = NetworkConfig::single_observer(
            22,
            SimDuration::from_hours(3),
            observer(ConnLimits::new(100, 200), DhtRole::Server),
        );
        let leave_at = SimTime::from_hours(1);
        // The leave batch owns its PID list; `victims` stays with the test
        // for the assertions below (no clone on the population-event path).
        let leave_batch: Vec<PeerId> = (0..10).map(PeerId::derived).collect();
        let output = Network::new(config, (0..20).map(peer).collect())
            .with_population_events(vec![PopulationEvent {
                at: leave_at,
                action: PopulationAction::Leave(leave_batch),
            }])
            .run();
        // Ground truth shows the victims offline from the leave batch on.
        let online = output.ground_truth.online_at(SimTime::from_hours(2));
        for (peer, _) in &online {
            assert!(!victims.contains(peer), "left peer {peer:?} still online");
        }
        // No connection to a victim opens after the leave.
        for conn in output.logs[0].connections() {
            if victims.contains(&conn.peer) {
                assert!(conn.opened_at < leave_at);
            }
        }
    }

    #[test]
    fn rotated_pids_never_resurrect() {
        let old = peer(0);
        let old_id = old.peer_id;
        let fresh = peer(900);
        let fresh_id = fresh.peer_id;
        let config = NetworkConfig::single_observer(
            23,
            SimDuration::from_hours(2),
            observer(ConnLimits::new(50, 100), DhtRole::Server),
        );
        let rotate_at = SimTime::from_secs(30 * 60);
        let output = Network::new(config, vec![old])
            .with_population_events(vec![PopulationEvent {
                at: rotate_at,
                action: PopulationAction::Rotate {
                    retire: vec![old_id],
                    join: vec![fresh],
                },
            }])
            .run();
        assert_eq!(output.ground_truth.population_size(), 2);
        let log = &output.logs[0];
        for event in log.events() {
            if event.peer() == old_id {
                assert!(
                    event.at() <= rotate_at,
                    "retired PID produced an event after rotation: {event:?}"
                );
            }
            if event.peer() == fresh_id {
                assert!(event.at() >= rotate_at);
            }
        }
        // The replacement actually shows up.
        assert!(log.events().any(|e| e.peer() == fresh_id));
    }

    #[test]
    fn population_events_preserve_seed_determinism() {
        let make = || {
            let config = NetworkConfig::single_observer(
                24,
                SimDuration::from_hours(2),
                observer(ConnLimits::new(20, 40), DhtRole::Server),
            );
            Network::new(config, (0..30).map(peer).collect())
                .with_population_events(vec![
                    PopulationEvent {
                        at: SimTime::from_secs(20 * 60),
                        action: PopulationAction::Join((50..60).map(peer).collect()),
                    },
                    PopulationEvent {
                        at: SimTime::from_secs(40 * 60),
                        action: PopulationAction::Leave(vec![PeerId::derived(1), PeerId::derived(2)]),
                    },
                ])
                .run()
        };
        let a = make();
        let b = make();
        assert_eq!(a.logs[0], b.logs[0]);
        assert_eq!(a.ground_truth, b.ground_truth);
    }

    #[test]
    fn multiple_observers_get_independent_logs() {
        let peers: Vec<_> = (0..80).map(peer).collect();
        let mut config = NetworkConfig::single_observer(
            11,
            SimDuration::from_hours(1),
            ObserverSpec::new("go-ipfs", PeerId::derived(2_000_000), DhtRole::Server, ConnLimits::new(50, 100)),
        );
        config.observers.push(ObserverSpec::new(
            "hydra-h0",
            PeerId::derived(2_000_001),
            DhtRole::Server,
            ConnLimits::GO_IPFS_DEFAULT,
        ));
        let output = Network::new(config, peers).run();
        assert_eq!(output.logs.len(), 2);
        assert!(output.log("go-ipfs").is_some());
        assert!(output.log("hydra-h0").is_some());
        assert!(output.log("nope").is_none());
        assert!(!output.logs[0].is_empty());
        assert!(!output.logs[1].is_empty());
    }

    #[test]
    fn rejoining_with_a_known_pid_shares_its_registry_slot() {
        // A Join batch can legitimately re-admit a PID that already exists
        // (a peer scripted to come back under the same identity). The two
        // population entries must share one registry slot so observations
        // attribute to the same PID — and nothing may panic when the log is
        // materialised.
        let config = NetworkConfig::single_observer(
            25,
            SimDuration::from_hours(2),
            observer(ConnLimits::new(50, 100), DhtRole::Server),
        );
        let rejoiner = peer(3).with_session(SessionPattern::OneShot {
            arrival_secs: 60.0,
            stay_secs: 600.0,
        });
        let output = Network::new(config, (0..5).map(peer).collect())
            .with_population_events(vec![PopulationEvent {
                at: SimTime::from_hours(1),
                action: PopulationAction::Join(vec![rejoiner]),
            }])
            .run();
        // Ground truth counts both population entries; the log materialises
        // without panicking and only knows the shared PID.
        assert_eq!(output.ground_truth.population_size(), 6);
        let log = &output.logs[0];
        let events: Vec<ObservedEvent> = log.events().collect();
        assert!(!events.is_empty());
        assert!(log.registry().peer_count() <= 5);
        assert!(events.iter().any(|e| e.peer() == PeerId::derived(3)));
    }

    #[test]
    fn counting_sinks_see_exactly_the_events_the_tables_store() {
        let make = || {
            let mut config = NetworkConfig::single_observer(
                31,
                SimDuration::from_hours(1),
                ObserverSpec::new("go-ipfs", PeerId::derived(3_000_000), DhtRole::Server, ConnLimits::new(30, 60)),
            );
            config.observers.push(ObserverSpec::new(
                "hydra-h0",
                PeerId::derived(3_000_001),
                DhtRole::Server,
                ConnLimits::new(30, 60),
            ));
            (config, (0..60).map(peer).collect::<Vec<_>>())
        };
        let (config, peers) = make();
        let output = Network::new(config, peers).run();
        let (config, peers) = make();
        let counted = Network::new(config, peers)
            .run_with_sinks(vec![CountingSink::default(), CountingSink::default()]);
        assert_eq!(counted.sinks.len(), 2);
        for (sink, log) in counted.sinks.iter().zip(&output.logs) {
            assert_eq!(sink.total() as usize, log.len());
        }
        assert_eq!(counted.ground_truth, output.ground_truth);
        assert_eq!(
            counted.registry.peer_count(),
            output.logs[0].registry().peer_count()
        );
    }
}
