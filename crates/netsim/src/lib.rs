//! Discrete-event simulator of an IPFS/libp2p overlay, seen from the vantage
//! point of one or more passive measurement nodes.
//!
//! The paper deploys instrumented go-ipfs and hydra-booster nodes in the
//! *live* IPFS network. This crate replaces the live network with a
//! simulation that reproduces exactly the observables such a node has access
//! to:
//!
//! * inbound and outbound **connections**, opened and closed with
//!   ground-truth reasons (local trim, remote trim, peer departure),
//! * **identify exchanges** carrying agent version, protocols and addresses,
//! * **metadata changes** pushed by connected peers (version upgrades, DHT
//!   role switches, autonat flapping),
//! * peers **discovered without a connection** through DHT routing traffic.
//!
//! The behaviour of the remote side — session churn, dialing, how long a
//! remote peer keeps a connection before trimming it — is driven by
//! per-peer [`RemotePeerSpec`]s supplied by the `population` crate; the
//! observing node's own connection manager is simulated faithfully with
//! [`p2pmodel::ConnectionManager`].
//!
//! Output is an [`ObserverLog`] per observer (everything the measurement
//! client could have recorded) plus a [`GroundTruth`] log of what actually
//! happened in the network, which the analysis crate uses for validation and
//! which the active-crawler baseline crawls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod config;
pub mod dht;
pub mod engine;
pub mod events;
pub mod mailbox;
pub mod obs;
pub mod spec;

pub use archive::{decode_output, encode_output, ArchiveError, ArchiveFile, ArchiveWriter};
pub use config::{DhtRole, NetworkConfig, ObserverSpec};
pub use dht::{dht_log_from_ground_truth, DhtConduct, DhtEvent, DhtLog, DhtReplay, DhtTracker, DhtView};
pub use engine::{Network, SimulationOutput, SinkRun};
pub use events::{GroundTruth, GroundTruthEvent, ObservedEvent, ObserverLog};
pub use mailbox::{
    run_full_protocol, run_reference, FullProtocolConfig, FullProtocolRun, MailboxStats,
};
pub use obs::{
    CountingSink, IdentifyRegistry, ObservationKind, ObservationSink, ObservationTable, ShardMap,
    TeeSink,
};
pub use spec::{
    DialBehavior, MetadataChange, PopulationAction, PopulationEvent, RemotePeerSpec,
    ScheduledChange, SessionPattern,
};
