//! The persistent columnar trace-archive container.
//!
//! Every analysis in the repo used to re-run the simulation; the dataset died
//! with the process. This module is the storage half of the `repro export` /
//! `repro analyze` pair: a versioned binary container that persists a full
//! [`SimulationOutput`] — the per-observer [`ObservationTable`] columns, the
//! interned [`IdentifyRegistry`] (written exactly once as dictionary pages),
//! the ground truth and the DHT routing-table history — so a campaign is
//! simulated once and re-analysed many times, byte-identically.
//!
//! # Container layout
//!
//! ```text
//! header:  MAGIC "IPFSOBSA" (8 B) | format version u32 LE (4 B)
//! blocks:  raw payloads, back to back (no per-block framing in the stream)
//! footer:  entry count u32 | per block { kind u16, owner u32,
//!              offset u64, len u64, FNV-1a checksum u64 }
//! tail:    footer offset u64 | footer checksum u64 | MAGIC "IPFSOBSF" (8 B)
//! ```
//!
//! All integers are little-endian. Offsets/lengths/checksums live only in the
//! footer, so a reader seeks from the fixed-size tail straight to any column
//! without parsing the file; block payloads are verified against their FNV-1a
//! checksum on access, so a flipped bit fails loudly instead of corrupting an
//! analysis. The format version is checked before anything else — an archive
//! written by a future incompatible version is rejected, not misparsed.
//!
//! Column payloads are compact: timestamps are delta-encoded (zigzag varint
//! deltas after an absolute first value), ids and connection numbers are
//! LEB128 varints, kinds are raw bytes. The campaign-level metadata block is
//! opaque at this layer — `measurement::archive` owns its encoding.

use crate::dht::{DhtConduct, DhtEvent, DhtLog};
use crate::engine::SimulationOutput;
use crate::events::{GroundTruth, GroundTruthEvent, ObserverLog};
use crate::obs::{IdentifyRegistry, ObservationKind, ObservationTable};
use p2pmodel::agent::SemVer;
use p2pmodel::peer_id::PEER_ID_BYTES;
use p2pmodel::{
    AgentVersion, IdentifyInfo, IpAddress, Multiaddr, PeerId, ProtocolSet, Transport, VersionFlavor,
};
use simclock::SimTime;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Leading magic of every archive file.
pub const MAGIC: [u8; 8] = *b"IPFSOBSA";
/// Trailing magic sealing the footer tail.
pub const FOOTER_MAGIC: [u8; 8] = *b"IPFSOBSF";
/// The format version this build writes and the only one it reads.
pub const FORMAT_VERSION: u32 = 1;

/// Owner tag of blocks that belong to the whole archive rather than to one
/// observer (dictionary pages, ground truth, metadata).
pub const GLOBAL_OWNER: u32 = u32::MAX;

/// Block kinds. The `owner` field of column blocks is the observer's index
/// in the [`BK_OBSERVERS`] directory.
pub const BK_META: u16 = 1;
/// Dictionary page: interned peer IDs, in slot order.
pub const BK_DICT_PEERS: u16 = 2;
/// Dictionary page: interned multiaddresses, in id order.
pub const BK_DICT_ADDRS: u16 = 3;
/// Dictionary page: interned identify payloads, in id order.
pub const BK_DICT_INFOS: u16 = 4;
/// Observer directory: per-log metadata, in log order.
pub const BK_OBSERVERS: u16 = 5;
/// Ground-truth peers and events.
pub const BK_GROUND_TRUTH: u16 = 6;
/// DHT routing-table history.
pub const BK_DHT: u16 = 7;
/// Timestamp column (delta-encoded).
pub const BK_COL_AT: u16 = 8;
/// Kind column (raw discriminant bytes).
pub const BK_COL_KIND: u16 = 9;
/// Peer-slot column (varints).
pub const BK_COL_PEER_SLOT: u16 = 10;
/// Connection-id column (varints, `NO_CONN` packed as 0).
pub const BK_COL_CONN: u16 = 11;
/// Payload column (varints).
pub const BK_COL_PAYLOAD: u16 = 12;

/// Everything that can go wrong reading an archive. Corruption is always a
/// loud, typed failure — never a silently wrong analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchiveError {
    /// The file is shorter than the structure being read requires.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The leading or trailing magic bytes are wrong — not an archive, or
    /// the tail was cut off.
    BadMagic {
        /// Which magic failed.
        context: &'static str,
    },
    /// The archive was written by an unknown format version.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A block's payload does not hash to the checksum recorded in the
    /// footer.
    ChecksumMismatch {
        /// The block's kind tag.
        kind: u16,
        /// The block's owner tag.
        owner: u32,
        /// Checksum recorded in the footer.
        expected: u64,
        /// Checksum of the bytes actually present.
        actual: u64,
    },
    /// A block the decoder needs is absent from the footer index.
    MissingBlock {
        /// The block's kind tag.
        kind: u16,
        /// The block's owner tag.
        owner: u32,
    },
    /// The bytes decoded but the values make no sense.
    Malformed {
        /// Description of the inconsistency.
        context: String,
    },
}

impl fmt::Display for ArchiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchiveError::Truncated { context } => {
                write!(f, "archive truncated while reading {context}")
            }
            ArchiveError::BadMagic { context } => write!(f, "bad archive magic ({context})"),
            ArchiveError::UnsupportedVersion { found } => write!(
                f,
                "unsupported archive format version {found} (this build reads {FORMAT_VERSION})"
            ),
            ArchiveError::ChecksumMismatch {
                kind,
                owner,
                expected,
                actual,
            } => write!(
                f,
                "checksum mismatch in block kind {kind} owner {owner}: footer records {expected:#018x}, payload hashes to {actual:#018x}"
            ),
            ArchiveError::MissingBlock { kind, owner } => {
                write!(f, "archive is missing block kind {kind} owner {owner}")
            }
            ArchiveError::Malformed { context } => write!(f, "malformed archive: {context}"),
        }
    }
}

impl std::error::Error for ArchiveError {}

fn malformed(context: impl Into<String>) -> ArchiveError {
    ArchiveError::Malformed {
        context: context.into(),
    }
}

/// FNV-1a over a byte slice — the same checksum the in-memory
/// [`ObservationTable::checksum`] uses, applied to serialised blocks.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Byte-level codec primitives
// ---------------------------------------------------------------------------

/// Little-endian / varint encoder over a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer and returns the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u128.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f64 as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a LEB128 varint.
    pub fn put_uvarint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a zigzag-encoded signed varint.
    pub fn put_ivarint(&mut self, v: i64) {
        self.put_uvarint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends raw bytes with no framing.
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_uvarint(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Little-endian / varint decoder over a borrowed slice. Every read is
/// bounds-checked and fails with [`ArchiveError::Truncated`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over a slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], ArchiveError> {
        if self.buf.len() - self.pos < n {
            return Err(ArchiveError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a raw byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, ArchiveError> {
        Ok(self.take(1, context)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, ArchiveError> {
        Ok(u16::from_le_bytes(self.take(2, context)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, ArchiveError> {
        Ok(u32::from_le_bytes(self.take(4, context)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, ArchiveError> {
        Ok(u64::from_le_bytes(self.take(8, context)?.try_into().unwrap()))
    }

    /// Reads a little-endian u128.
    pub fn u128(&mut self, context: &'static str) -> Result<u128, ArchiveError> {
        Ok(u128::from_le_bytes(self.take(16, context)?.try_into().unwrap()))
    }

    /// Reads an f64 from its bit pattern.
    pub fn f64(&mut self, context: &'static str) -> Result<f64, ArchiveError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    /// Reads a LEB128 varint.
    pub fn uvarint(&mut self, context: &'static str) -> Result<u64, ArchiveError> {
        let mut value: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.u8(context)?;
            if shift == 63 && byte > 1 {
                return Err(malformed(format!("varint overflow reading {context}")));
            }
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
            shift += 7;
            if shift > 63 {
                return Err(malformed(format!("varint too long reading {context}")));
            }
        }
    }

    /// Reads a zigzag-encoded signed varint.
    pub fn ivarint(&mut self, context: &'static str) -> Result<i64, ArchiveError> {
        let raw = self.uvarint(context)?;
        Ok(((raw >> 1) as i64) ^ -((raw & 1) as i64))
    }

    /// Reads a varint length as usize, guarding against absurd values.
    pub fn len(&mut self, context: &'static str) -> Result<usize, ArchiveError> {
        let v = self.uvarint(context)?;
        let v = usize::try_from(v).map_err(|_| malformed(format!("length overflow in {context}")))?;
        // A length can never exceed the bytes remaining (every element takes
        // at least one byte) — reject early so corrupt lengths do not turn
        // into gigabyte allocations.
        if v > self.buf.len() - self.pos {
            return Err(ArchiveError::Truncated { context: "length-prefixed sequence" });
        }
        Ok(v)
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], ArchiveError> {
        let n = self.len(context)?;
        self.take(n, context)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self, context: &'static str) -> Result<&'a str, ArchiveError> {
        std::str::from_utf8(self.bytes(context)?)
            .map_err(|_| malformed(format!("invalid UTF-8 in {context}")))
    }

    /// Ensures every byte was consumed — trailing garbage is corruption.
    pub fn finish(self, context: &'static str) -> Result<(), ArchiveError> {
        if self.pos != self.buf.len() {
            return Err(malformed(format!(
                "{} trailing bytes after {context}",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Block container
// ---------------------------------------------------------------------------

/// One entry of the footer index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Block kind tag (`BK_*`).
    pub kind: u16,
    /// Owning observer index, or [`GLOBAL_OWNER`].
    pub owner: u32,
    /// Byte offset of the payload in the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// FNV-1a checksum of the payload.
    pub checksum: u64,
}

/// Serialises an archive: header, then blocks, then the footer index.
#[derive(Debug)]
pub struct ArchiveWriter {
    buf: Vec<u8>,
    blocks: Vec<BlockEntry>,
}

impl ArchiveWriter {
    /// Starts an archive (writes the header).
    pub fn new() -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        ArchiveWriter {
            buf,
            blocks: Vec::new(),
        }
    }

    /// Appends a block payload and records it in the footer index.
    pub fn push_block(&mut self, kind: u16, owner: u32, payload: &[u8]) {
        self.blocks.push(BlockEntry {
            kind,
            owner,
            offset: self.buf.len() as u64,
            len: payload.len() as u64,
            checksum: fnv1a(payload),
        });
        self.buf.extend_from_slice(payload);
    }

    /// Writes the footer index and tail, returning the finished file bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let footer_offset = self.buf.len() as u64;
        let mut footer = ByteWriter::new();
        footer.put_u32(self.blocks.len() as u32);
        for entry in &self.blocks {
            footer.put_u16(entry.kind);
            footer.put_u32(entry.owner);
            footer.put_u64(entry.offset);
            footer.put_u64(entry.len);
            footer.put_u64(entry.checksum);
        }
        let footer = footer.into_bytes();
        let footer_checksum = fnv1a(&footer);
        self.buf.extend_from_slice(&footer);
        self.buf.extend_from_slice(&footer_offset.to_le_bytes());
        self.buf.extend_from_slice(&footer_checksum.to_le_bytes());
        self.buf.extend_from_slice(&FOOTER_MAGIC);
        self.buf
    }
}

impl Default for ArchiveWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// A parsed archive: the raw bytes plus the verified footer index. Block
/// payloads are checksum-verified on access.
#[derive(Debug)]
pub struct ArchiveFile<'a> {
    bytes: &'a [u8],
    blocks: Vec<BlockEntry>,
}

impl<'a> ArchiveFile<'a> {
    /// Parses and verifies the header and footer of an archive.
    ///
    /// The block payloads are *not* touched here — readers seek to the
    /// columns they need via [`Self::block`], which verifies the checksum of
    /// exactly the bytes it hands out.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ArchiveError> {
        let header_len = MAGIC.len() + 4;
        if bytes.len() < header_len {
            return Err(ArchiveError::Truncated { context: "header" });
        }
        if bytes[..MAGIC.len()] != MAGIC {
            return Err(ArchiveError::BadMagic { context: "file header" });
        }
        let version = u32::from_le_bytes(bytes[MAGIC.len()..header_len].try_into().unwrap());
        if version != FORMAT_VERSION {
            return Err(ArchiveError::UnsupportedVersion { found: version });
        }
        let tail_len = 8 + 8 + FOOTER_MAGIC.len();
        if bytes.len() < header_len + tail_len {
            return Err(ArchiveError::Truncated { context: "footer tail" });
        }
        if bytes[bytes.len() - FOOTER_MAGIC.len()..] != FOOTER_MAGIC {
            return Err(ArchiveError::BadMagic { context: "footer tail" });
        }
        let tail_start = bytes.len() - tail_len;
        let footer_offset = u64::from_le_bytes(bytes[tail_start..tail_start + 8].try_into().unwrap());
        let footer_checksum =
            u64::from_le_bytes(bytes[tail_start + 8..tail_start + 16].try_into().unwrap());
        let footer_offset = usize::try_from(footer_offset)
            .ok()
            .filter(|&o| o >= header_len && o <= tail_start)
            .ok_or_else(|| malformed("footer offset out of bounds"))?;
        let footer = &bytes[footer_offset..tail_start];
        let actual = fnv1a(footer);
        if actual != footer_checksum {
            return Err(ArchiveError::ChecksumMismatch {
                kind: 0,
                owner: GLOBAL_OWNER,
                expected: footer_checksum,
                actual,
            });
        }
        let mut r = ByteReader::new(footer);
        let count = r.u32("footer entry count")? as usize;
        let mut blocks = Vec::with_capacity(count.min(footer.len() / 30));
        for _ in 0..count {
            blocks.push(BlockEntry {
                kind: r.u16("footer entry kind")?,
                owner: r.u32("footer entry owner")?,
                offset: r.u64("footer entry offset")?,
                len: r.u64("footer entry len")?,
                checksum: r.u64("footer entry checksum")?,
            });
        }
        r.finish("footer index")?;
        Ok(ArchiveFile { bytes, blocks })
    }

    /// The footer index.
    pub fn blocks(&self) -> &[BlockEntry] {
        &self.blocks
    }

    /// Looks up a block and returns its checksum-verified payload.
    pub fn block(&self, kind: u16, owner: u32) -> Result<&'a [u8], ArchiveError> {
        let entry = self
            .blocks
            .iter()
            .find(|b| b.kind == kind && b.owner == owner)
            .ok_or(ArchiveError::MissingBlock { kind, owner })?;
        let offset = usize::try_from(entry.offset).map_err(|_| malformed("block offset overflow"))?;
        let len = usize::try_from(entry.len).map_err(|_| malformed("block length overflow"))?;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(ArchiveError::Truncated { context: "block payload" })?;
        let payload = &self.bytes[offset..end];
        let actual = fnv1a(payload);
        if actual != entry.checksum {
            return Err(ArchiveError::ChecksumMismatch {
                kind: entry.kind,
                owner: entry.owner,
                expected: entry.checksum,
                actual,
            });
        }
        Ok(payload)
    }
}

// ---------------------------------------------------------------------------
// Value codecs
// ---------------------------------------------------------------------------

fn put_peer(w: &mut ByteWriter, peer: &PeerId) {
    w.put_raw(peer.as_bytes());
}

fn read_peer(r: &mut ByteReader<'_>) -> Result<PeerId, ArchiveError> {
    let bytes = r.take(PEER_ID_BYTES, "peer id")?;
    Ok(PeerId::from_bytes(bytes.try_into().unwrap()))
}

fn put_addr(w: &mut ByteWriter, addr: &Multiaddr) {
    match addr.ip() {
        IpAddress::V4(v) => {
            w.put_u8(0);
            w.put_u32(v);
        }
        IpAddress::V6(v) => {
            w.put_u8(1);
            w.put_u128(v);
        }
    }
    w.put_u8(match addr.transport() {
        Transport::Tcp => 0,
        Transport::Quic => 1,
        Transport::Ws => 2,
        Transport::Circuit => 3,
    });
    w.put_u16(addr.port());
}

fn read_addr(r: &mut ByteReader<'_>) -> Result<Multiaddr, ArchiveError> {
    let ip = match r.u8("ip tag")? {
        0 => IpAddress::V4(r.u32("ipv4")?),
        1 => IpAddress::V6(r.u128("ipv6")?),
        tag => return Err(malformed(format!("unknown ip tag {tag}"))),
    };
    let transport = match r.u8("transport tag")? {
        0 => Transport::Tcp,
        1 => Transport::Quic,
        2 => Transport::Ws,
        3 => Transport::Circuit,
        tag => return Err(malformed(format!("unknown transport tag {tag}"))),
    };
    let port = r.u16("port")?;
    Ok(Multiaddr::new(ip, transport, port))
}

fn put_agent(w: &mut ByteWriter, agent: &AgentVersion) {
    match agent {
        AgentVersion::GoIpfs {
            version,
            commit,
            flavor,
        } => {
            w.put_u8(0);
            w.put_uvarint(version.major as u64);
            w.put_uvarint(version.minor as u64);
            w.put_uvarint(version.patch as u64);
            match &version.pre {
                Some(pre) => {
                    w.put_u8(1);
                    w.put_str(pre);
                }
                None => w.put_u8(0),
            }
            match commit {
                Some(commit) => {
                    w.put_u8(1);
                    w.put_str(commit);
                }
                None => w.put_u8(0),
            }
            w.put_u8(match flavor {
                VersionFlavor::Main => 0,
                VersionFlavor::Dirty => 1,
            });
        }
        AgentVersion::Other(s) => {
            w.put_u8(1);
            w.put_str(s);
        }
        AgentVersion::Missing => w.put_u8(2),
    }
}

fn read_agent(r: &mut ByteReader<'_>) -> Result<AgentVersion, ArchiveError> {
    match r.u8("agent tag")? {
        0 => {
            let major = r.uvarint("semver major")? as u32;
            let minor = r.uvarint("semver minor")? as u32;
            let patch = r.uvarint("semver patch")? as u32;
            let version = match r.u8("semver pre tag")? {
                0 => SemVer::new(major, minor, patch),
                1 => SemVer::with_pre(major, minor, patch, r.str("semver pre")?),
                tag => return Err(malformed(format!("unknown semver pre tag {tag}"))),
            };
            let commit = match r.u8("commit tag")? {
                0 => None,
                1 => Some(r.str("commit")?),
                tag => return Err(malformed(format!("unknown commit tag {tag}"))),
            };
            let flavor = match r.u8("flavor tag")? {
                0 => VersionFlavor::Main,
                1 => VersionFlavor::Dirty,
                tag => return Err(malformed(format!("unknown flavor tag {tag}"))),
            };
            Ok(AgentVersion::go_ipfs(version, commit, flavor))
        }
        1 => Ok(AgentVersion::Other(r.str("other agent")?.to_string())),
        2 => Ok(AgentVersion::Missing),
        tag => Err(malformed(format!("unknown agent tag {tag}"))),
    }
}

fn put_identify(w: &mut ByteWriter, info: &IdentifyInfo) {
    put_agent(w, &info.agent);
    w.put_uvarint(info.protocols.len() as u64);
    for protocol in info.protocols.iter() {
        w.put_str(protocol.as_str());
    }
    w.put_uvarint(info.listen_addrs.len() as u64);
    for addr in &info.listen_addrs {
        put_addr(w, addr);
    }
}

fn read_identify(r: &mut ByteReader<'_>) -> Result<IdentifyInfo, ArchiveError> {
    let agent = read_agent(r)?;
    let protocol_count = r.len("protocol count")?;
    let mut protocols = ProtocolSet::new();
    for _ in 0..protocol_count {
        protocols.insert(r.str("protocol id")?);
    }
    let addr_count = r.len("listen addr count")?;
    let mut listen_addrs = Vec::with_capacity(addr_count);
    for _ in 0..addr_count {
        listen_addrs.push(read_addr(r)?);
    }
    Ok(IdentifyInfo::new(agent, protocols, listen_addrs))
}

// ---------------------------------------------------------------------------
// Dictionary pages (IdentifyRegistry)
// ---------------------------------------------------------------------------

fn encode_dict_peers(registry: &IdentifyRegistry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(registry.peer_count() as u64);
    for slot in 0..registry.peer_count() as u32 {
        put_peer(&mut w, &registry.peer(slot));
    }
    w.into_bytes()
}

fn encode_dict_addrs(registry: &IdentifyRegistry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(registry.addr_count() as u64);
    for id in 0..registry.addr_count() as u32 {
        put_addr(&mut w, &registry.addr(id));
    }
    w.into_bytes()
}

fn encode_dict_infos(registry: &IdentifyRegistry) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(registry.identify_count() as u64);
    for id in 0..registry.identify_count() as u32 {
        put_identify(&mut w, registry.identify(id));
    }
    w.into_bytes()
}

fn decode_registry(
    peers: &[u8],
    addrs: &[u8],
    infos: &[u8],
) -> Result<IdentifyRegistry, ArchiveError> {
    let mut r = ByteReader::new(peers);
    let count = r.len("peer dictionary count")?;
    let mut peer_vec = Vec::with_capacity(count);
    for _ in 0..count {
        peer_vec.push(read_peer(&mut r)?);
    }
    r.finish("peer dictionary")?;

    let mut r = ByteReader::new(addrs);
    let count = r.len("address dictionary count")?;
    let mut addr_vec = Vec::with_capacity(count);
    for _ in 0..count {
        addr_vec.push(read_addr(&mut r)?);
    }
    r.finish("address dictionary")?;

    let mut r = ByteReader::new(infos);
    let count = r.len("identify dictionary count")?;
    let mut info_vec = Vec::with_capacity(count);
    for _ in 0..count {
        info_vec.push(read_identify(&mut r)?);
    }
    r.finish("identify dictionary")?;

    Ok(IdentifyRegistry::from_parts(peer_vec, addr_vec, info_vec))
}

// ---------------------------------------------------------------------------
// Column codecs (ObservationTable)
// ---------------------------------------------------------------------------

fn encode_col_at(ats: &[SimTime]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(ats.len() as u64);
    let mut prev: u64 = 0;
    for (i, at) in ats.iter().enumerate() {
        let ms = at.as_millis();
        if i == 0 {
            w.put_uvarint(ms);
        } else {
            // Zigzag deltas: engine tables are time-sorted (deltas ≥ 0 and
            // tiny), but manually assembled tables need not be, and the
            // codec must round-trip any column exactly.
            w.put_ivarint(ms.wrapping_sub(prev) as i64);
        }
        prev = ms;
    }
    w.into_bytes()
}

fn decode_col_at(payload: &[u8]) -> Result<Vec<SimTime>, ArchiveError> {
    let mut r = ByteReader::new(payload);
    let count = r.len("at column count")?;
    let mut out = Vec::with_capacity(count);
    let mut prev: u64 = 0;
    for i in 0..count {
        let ms = if i == 0 {
            r.uvarint("first timestamp")?
        } else {
            prev.wrapping_add(r.ivarint("timestamp delta")? as u64)
        };
        out.push(SimTime::from_millis(ms));
        prev = ms;
    }
    r.finish("at column")?;
    Ok(out)
}

fn encode_col_kind(kinds: &[ObservationKind]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(kinds.len() as u64);
    for &kind in kinds {
        w.put_u8(kind as u8);
    }
    w.into_bytes()
}

fn decode_col_kind(payload: &[u8]) -> Result<Vec<ObservationKind>, ArchiveError> {
    let mut r = ByteReader::new(payload);
    let count = r.len("kind column count")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let byte = r.u8("kind byte")?;
        out.push(
            ObservationKind::from_u8(byte)
                .ok_or_else(|| malformed(format!("unknown observation kind {byte}")))?,
        );
    }
    r.finish("kind column")?;
    Ok(out)
}

fn encode_col_u32s(values: &[u32]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(values.len() as u64);
    for &v in values {
        w.put_uvarint(v as u64);
    }
    w.into_bytes()
}

fn decode_col_u32s(payload: &[u8], what: &'static str) -> Result<Vec<u32>, ArchiveError> {
    let mut r = ByteReader::new(payload);
    let count = r.len(what)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = r.uvarint(what)?;
        out.push(u32::try_from(v).map_err(|_| malformed(format!("{what} value {v} exceeds u32")))?);
    }
    r.finish(what)?;
    Ok(out)
}

/// `NO_CONN` (`u64::MAX`) would be a worst-case 10-byte varint on the most
/// common non-connection rows, so the conn column stores `0` for it and
/// `conn + 1` otherwise.
fn encode_col_conn(conns: &[u64]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(conns.len() as u64);
    for &conn in conns {
        if conn == crate::obs::NO_CONN {
            w.put_uvarint(0);
        } else {
            w.put_uvarint(
                conn.checked_add(1)
                    .expect("connection id u64::MAX - 1 is unrepresentable in an archive"),
            );
        }
    }
    w.into_bytes()
}

fn decode_col_conn(payload: &[u8]) -> Result<Vec<u64>, ArchiveError> {
    let mut r = ByteReader::new(payload);
    let count = r.len("conn column count")?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let v = r.uvarint("conn value")?;
        out.push(if v == 0 { crate::obs::NO_CONN } else { v - 1 });
    }
    r.finish("conn column")?;
    Ok(out)
}

// ---------------------------------------------------------------------------
// Wire codecs: event blocks and registry deltas
// ---------------------------------------------------------------------------

/// Encodes rows `from..to` of an observation table as a self-contained
/// columnar event block: the same five column codecs the archive writer
/// uses, length-prefixed and concatenated so a single payload can travel
/// over a stream protocol (the serve daemon's binary frames) without the
/// surrounding archive container.
///
/// # Panics
///
/// Panics if `from..to` is not a valid row range of `table`.
pub fn encode_event_block(table: &ObservationTable, from: usize, to: usize) -> Vec<u8> {
    assert!(
        from <= to && to <= table.len(),
        "event block range {from}..{to} out of bounds for {} rows",
        table.len()
    );
    let mut w = ByteWriter::new();
    w.put_bytes(&encode_col_at(&table.ats()[from..to]));
    w.put_bytes(&encode_col_kind(&table.kinds()[from..to]));
    w.put_bytes(&encode_col_u32s(&table.peer_slots()[from..to]));
    w.put_bytes(&encode_col_conn(&table.conns()[from..to]));
    w.put_bytes(&encode_col_u32s(&table.payloads()[from..to]));
    w.into_bytes()
}

/// Decodes an event block produced by [`encode_event_block`] back into a
/// standalone [`ObservationTable`] holding just those rows. Column ids
/// (peer slots, address/payload ids, connection ids) are preserved verbatim;
/// resolving them requires the registry the sender maintains via
/// [`encode_registry_delta`] / [`apply_registry_delta`].
pub fn decode_event_block(payload: &[u8]) -> Result<ObservationTable, ArchiveError> {
    let mut r = ByteReader::new(payload);
    let at = decode_col_at(r.bytes("event block at column")?)?;
    let kind = decode_col_kind(r.bytes("event block kind column")?)?;
    let peer_slot = decode_col_u32s(r.bytes("event block peer column")?, "peer slot")?;
    let conn = decode_col_conn(r.bytes("event block conn column")?)?;
    let payload_col = decode_col_u32s(r.bytes("event block payload column")?, "payload id")?;
    r.finish("event block")?;
    let n = at.len();
    if kind.len() != n || peer_slot.len() != n || conn.len() != n || payload_col.len() != n {
        return Err(malformed(format!(
            "event block columns disagree: at={n} kind={} peer_slot={} conn={} payload={}",
            kind.len(),
            peer_slot.len(),
            conn.len(),
            payload_col.len()
        )));
    }
    Ok(ObservationTable::from_columns(
        at,
        kind,
        peer_slot,
        conn,
        payload_col,
    ))
}

/// Encodes every registry entry past the `(from_peers, from_addrs,
/// from_infos)` cursor as an incremental dictionary delta. The base counts
/// are recorded in the payload so the receiver can verify its own registry
/// is exactly at the cursor before appending — dense ids stay aligned on
/// both sides by construction. A delta from `(0, 0, 0)` is a full registry
/// serialization.
///
/// # Panics
///
/// Panics if any cursor component exceeds the registry's current counts.
pub fn encode_registry_delta(
    registry: &IdentifyRegistry,
    from_peers: usize,
    from_addrs: usize,
    from_infos: usize,
) -> Vec<u8> {
    assert!(
        from_peers <= registry.peer_count()
            && from_addrs <= registry.addr_count()
            && from_infos <= registry.identify_count(),
        "registry delta cursor ({from_peers}, {from_addrs}, {from_infos}) past registry counts"
    );
    let mut w = ByteWriter::new();
    w.put_uvarint(from_peers as u64);
    w.put_uvarint(from_addrs as u64);
    w.put_uvarint(from_infos as u64);
    w.put_uvarint((registry.peer_count() - from_peers) as u64);
    for slot in from_peers as u32..registry.peer_count() as u32 {
        put_peer(&mut w, &registry.peer(slot));
    }
    w.put_uvarint((registry.addr_count() - from_addrs) as u64);
    for id in from_addrs as u32..registry.addr_count() as u32 {
        put_addr(&mut w, &registry.addr(id));
    }
    w.put_uvarint((registry.identify_count() - from_infos) as u64);
    for id in from_infos as u32..registry.identify_count() as u32 {
        put_identify(&mut w, registry.identify(id));
    }
    w.into_bytes()
}

/// Applies a delta produced by [`encode_registry_delta`] to a registry that
/// is exactly at the delta's base cursor, appending the new peers,
/// addresses and identify payloads so both sides agree on every dense id.
///
/// Fails with [`ArchiveError::Malformed`] when the receiver's counts do not
/// match the base cursor (a skipped or replayed delta) or when an entry is
/// already interned (the dense-id alignment would silently break: the
/// registry dedups, so a duplicate would map to an old id while the sender
/// keeps referencing the new one).
pub fn apply_registry_delta(
    registry: &mut IdentifyRegistry,
    payload: &[u8],
) -> Result<(), ArchiveError> {
    let mut r = ByteReader::new(payload);
    // The base cursors count entries the *receiver* already holds, not
    // entries present in this payload, so they are read as plain varints —
    // `ByteReader::len` would reject an empty delta whose base exceeds the
    // few bytes of the payload.
    let cursor = |r: &mut ByteReader, context: &'static str| -> Result<usize, ArchiveError> {
        let v = r.uvarint(context)?;
        usize::try_from(v).map_err(|_| malformed(format!("cursor overflow in {context}")))
    };
    let base_peers = cursor(&mut r, "registry delta peer base")?;
    let base_addrs = cursor(&mut r, "registry delta addr base")?;
    let base_infos = cursor(&mut r, "registry delta identify base")?;
    if base_peers != registry.peer_count()
        || base_addrs != registry.addr_count()
        || base_infos != registry.identify_count()
    {
        return Err(malformed(format!(
            "registry delta base ({base_peers}, {base_addrs}, {base_infos}) does not match \
             registry counts ({}, {}, {})",
            registry.peer_count(),
            registry.addr_count(),
            registry.identify_count()
        )));
    }
    let count = r.len("registry delta peer count")?;
    for i in 0..count {
        let peer = read_peer(&mut r)?;
        let expected = (base_peers + i) as u32;
        if registry.register_peer(peer) != expected {
            return Err(malformed(format!(
                "registry delta peer {i} duplicates an existing entry (expected slot {expected})"
            )));
        }
    }
    let count = r.len("registry delta addr count")?;
    for i in 0..count {
        let addr = read_addr(&mut r)?;
        let expected = (base_addrs + i) as u32;
        if registry.intern_addr(addr) != expected {
            return Err(malformed(format!(
                "registry delta addr {i} duplicates an existing entry (expected id {expected})"
            )));
        }
    }
    let count = r.len("registry delta identify count")?;
    for i in 0..count {
        let info = read_identify(&mut r)?;
        let expected = (base_infos + i) as u32;
        if registry.intern_identify(&info) != expected {
            return Err(malformed(format!(
                "registry delta identify {i} duplicates an existing entry (expected id {expected})"
            )));
        }
    }
    r.finish("registry delta")
}

// ---------------------------------------------------------------------------
// Ground truth and DHT log codecs
// ---------------------------------------------------------------------------

/// A per-block peer dictionary: event streams reference peers by dense
/// varint index instead of repeating 32 raw bytes per mention. Ids are
/// assigned in first-mention order while the event stream is encoded into a
/// scratch writer; the dictionary is then emitted *before* the stream so the
/// reader can resolve indices in one pass.
#[derive(Default)]
struct PeerDict {
    ids: HashMap<PeerId, u64>,
    peers: Vec<PeerId>,
}

impl PeerDict {
    fn put_ref(&mut self, w: &mut ByteWriter, peer: &PeerId) {
        let id = match self.ids.get(peer) {
            Some(&id) => id,
            None => {
                let id = self.peers.len() as u64;
                self.ids.insert(*peer, id);
                self.peers.push(*peer);
                id
            }
        };
        w.put_uvarint(id);
    }

    /// Emits the dictionary followed by the already-encoded event stream.
    fn into_block(self, stream: ByteWriter) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_uvarint(self.peers.len() as u64);
        for peer in &self.peers {
            put_peer(&mut w, peer);
        }
        w.put_raw(&stream.into_bytes());
        w.into_bytes()
    }
}

/// The reader half: the dictionary decoded from the front of a block.
struct PeerTable(Vec<PeerId>);

impl PeerTable {
    fn read(r: &mut ByteReader<'_>, context: &'static str) -> Result<Self, ArchiveError> {
        let count = r.len(context)?;
        let mut peers = Vec::with_capacity(count);
        for _ in 0..count {
            peers.push(read_peer(r)?);
        }
        Ok(PeerTable(peers))
    }

    fn read_ref(&self, r: &mut ByteReader<'_>, context: &'static str) -> Result<PeerId, ArchiveError> {
        let id = r.uvarint(context)?;
        self.0
            .get(id as usize)
            .copied()
            .ok_or_else(|| malformed(format!("{context} index {id} out of range ({} peers)", self.0.len())))
    }
}

fn encode_ground_truth(truth: &GroundTruth) -> Vec<u8> {
    let mut dict = PeerDict::default();
    let mut w = ByteWriter::new();
    w.put_uvarint(truth.peers.len() as u64);
    for (peer, server) in &truth.peers {
        dict.put_ref(&mut w, peer);
        w.put_u8(u8::from(*server));
    }
    w.put_uvarint(truth.events.len() as u64);
    let mut prev = 0u64;
    let mut put_at = |w: &mut ByteWriter, at: &SimTime| {
        let ms = at.as_millis();
        w.put_ivarint(ms.wrapping_sub(prev) as i64);
        prev = ms;
    };
    for event in &truth.events {
        match event {
            GroundTruthEvent::PeerOnline { at, peer } => {
                w.put_u8(0);
                put_at(&mut w, at);
                dict.put_ref(&mut w, peer);
            }
            GroundTruthEvent::PeerOffline { at, peer } => {
                w.put_u8(1);
                put_at(&mut w, at);
                dict.put_ref(&mut w, peer);
            }
            GroundTruthEvent::RoleChanged {
                at,
                peer,
                dht_server,
            } => {
                w.put_u8(2);
                put_at(&mut w, at);
                dict.put_ref(&mut w, peer);
                w.put_u8(u8::from(*dht_server));
            }
        }
    }
    dict.into_block(w)
}

fn decode_ground_truth(payload: &[u8]) -> Result<GroundTruth, ArchiveError> {
    let mut r = ByteReader::new(payload);
    let table = PeerTable::read(&mut r, "ground-truth dictionary")?;
    let count = r.len("ground-truth peer count")?;
    let mut peers = Vec::with_capacity(count);
    for _ in 0..count {
        let peer = table.read_ref(&mut r, "ground-truth peer")?;
        let server = read_bool(&mut r, "ground-truth role")?;
        peers.push((peer, server));
    }
    let count = r.len("ground-truth event count")?;
    let mut events = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let tag = r.u8("ground-truth event tag")?;
        let delta = r.ivarint("ground-truth event time")?;
        prev = prev.wrapping_add(delta as u64);
        let at = SimTime::from_millis(prev);
        let peer = table.read_ref(&mut r, "ground-truth event peer")?;
        events.push(match tag {
            0 => GroundTruthEvent::PeerOnline { at, peer },
            1 => GroundTruthEvent::PeerOffline { at, peer },
            2 => GroundTruthEvent::RoleChanged {
                at,
                peer,
                dht_server: read_bool(&mut r, "ground-truth role change")?,
            },
            tag => return Err(malformed(format!("unknown ground-truth event tag {tag}"))),
        });
    }
    r.finish("ground truth")?;
    Ok(GroundTruth { peers, events })
}

fn read_bool(r: &mut ByteReader<'_>, context: &'static str) -> Result<bool, ArchiveError> {
    match r.u8(context)? {
        0 => Ok(false),
        1 => Ok(true),
        byte => Err(malformed(format!("invalid bool byte {byte} in {context}"))),
    }
}

fn encode_dht(dht: &DhtLog) -> Vec<u8> {
    let mut dict = PeerDict::default();
    let mut w = ByteWriter::new();
    w.put_uvarint(dht.k as u64);
    w.put_uvarint(dht.bootstrap.len() as u64);
    for peer in &dht.bootstrap {
        dict.put_ref(&mut w, peer);
    }
    w.put_uvarint(dht.conduct.len() as u64);
    for (peer, conduct) in &dht.conduct {
        dict.put_ref(&mut w, peer);
        match conduct {
            DhtConduct::Honest => w.put_u8(0),
            DhtConduct::Sybil { cluster } => {
                w.put_u8(1);
                w.put_u32(*cluster);
            }
            DhtConduct::Poison { junk_per_reply } => {
                w.put_u8(2);
                w.put_uvarint(*junk_per_reply as u64);
            }
        }
    }
    w.put_uvarint(dht.events.len() as u64);
    let mut prev = 0u64;
    let mut put_at = |w: &mut ByteWriter, at: &SimTime| {
        let ms = at.as_millis();
        w.put_ivarint(ms.wrapping_sub(prev) as i64);
        prev = ms;
    };
    for event in &dht.events {
        match event {
            DhtEvent::Up { at, server } => {
                w.put_u8(0);
                put_at(&mut w, at);
                dict.put_ref(&mut w, server);
            }
            DhtEvent::Down { at, server } => {
                w.put_u8(1);
                put_at(&mut w, at);
                dict.put_ref(&mut w, server);
            }
            DhtEvent::Admit { at, owner, entry } => {
                w.put_u8(2);
                put_at(&mut w, at);
                dict.put_ref(&mut w, owner);
                dict.put_ref(&mut w, entry);
            }
            DhtEvent::Evict { at, owner, entry } => {
                w.put_u8(3);
                put_at(&mut w, at);
                dict.put_ref(&mut w, owner);
                dict.put_ref(&mut w, entry);
            }
        }
    }
    dict.into_block(w)
}

fn decode_dht(payload: &[u8]) -> Result<DhtLog, ArchiveError> {
    let mut r = ByteReader::new(payload);
    let table = PeerTable::read(&mut r, "dht dictionary")?;
    let k = r.uvarint("dht k")? as usize;
    let count = r.len("dht bootstrap count")?;
    let mut bootstrap = Vec::with_capacity(count);
    for _ in 0..count {
        bootstrap.push(table.read_ref(&mut r, "dht bootstrap peer")?);
    }
    let count = r.len("dht conduct count")?;
    let mut conduct = Vec::with_capacity(count);
    for _ in 0..count {
        let peer = table.read_ref(&mut r, "dht conduct peer")?;
        let c = match r.u8("dht conduct tag")? {
            0 => DhtConduct::Honest,
            1 => DhtConduct::Sybil {
                cluster: r.u32("sybil cluster")?,
            },
            2 => DhtConduct::Poison {
                junk_per_reply: r.uvarint("poison junk")? as usize,
            },
            tag => return Err(malformed(format!("unknown dht conduct tag {tag}"))),
        };
        conduct.push((peer, c));
    }
    let count = r.len("dht event count")?;
    let mut events = Vec::with_capacity(count);
    let mut prev = 0u64;
    for _ in 0..count {
        let tag = r.u8("dht event tag")?;
        let delta = r.ivarint("dht event time")?;
        prev = prev.wrapping_add(delta as u64);
        let at = SimTime::from_millis(prev);
        events.push(match tag {
            0 => DhtEvent::Up {
                at,
                server: table.read_ref(&mut r, "dht up server")?,
            },
            1 => DhtEvent::Down {
                at,
                server: table.read_ref(&mut r, "dht down server")?,
            },
            2 => DhtEvent::Admit {
                at,
                owner: table.read_ref(&mut r, "dht admit owner")?,
                entry: table.read_ref(&mut r, "dht admit entry")?,
            },
            3 => DhtEvent::Evict {
                at,
                owner: table.read_ref(&mut r, "dht evict owner")?,
                entry: table.read_ref(&mut r, "dht evict entry")?,
            },
            tag => return Err(malformed(format!("unknown dht event tag {tag}"))),
        });
    }
    r.finish("dht log")?;
    Ok(DhtLog {
        k,
        bootstrap,
        conduct,
        events,
    })
}

// ---------------------------------------------------------------------------
// Whole-output encode / decode
// ---------------------------------------------------------------------------

fn encode_observer_directory(logs: &[ObserverLog]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_uvarint(logs.len() as u64);
    for log in logs {
        w.put_str(&log.observer);
        put_peer(&mut w, &log.peer_id);
        w.put_u8(u8::from(log.dht_server));
        w.put_uvarint(log.started_at.as_millis());
        w.put_uvarint(log.ended_at.as_millis());
    }
    w.into_bytes()
}

/// Serialises a finished simulation output into one archive file, with the
/// caller's opaque `meta` bytes as the metadata block.
///
/// The shared [`IdentifyRegistry`] is written exactly once as three
/// dictionary pages; every observer contributes five column blocks. Returns
/// an error if the logs do not share a single registry (engine outputs
/// always do — a manually assembled output with per-log registries cannot be
/// archived with shared dictionary pages).
pub fn encode_output(output: &SimulationOutput, meta: &[u8]) -> Result<Vec<u8>, ArchiveError> {
    let empty_registry;
    let registry: &IdentifyRegistry = match output.logs.first() {
        Some(first) => {
            let registry = first.registry();
            for log in &output.logs[1..] {
                if !std::ptr::eq(log.registry(), registry) {
                    return Err(malformed(
                        "observer logs do not share one IdentifyRegistry; cannot write shared dictionary pages",
                    ));
                }
            }
            registry
        }
        None => {
            empty_registry = IdentifyRegistry::new();
            &empty_registry
        }
    };

    let mut writer = ArchiveWriter::new();
    writer.push_block(BK_META, GLOBAL_OWNER, meta);
    writer.push_block(BK_DICT_PEERS, GLOBAL_OWNER, &encode_dict_peers(registry));
    writer.push_block(BK_DICT_ADDRS, GLOBAL_OWNER, &encode_dict_addrs(registry));
    writer.push_block(BK_DICT_INFOS, GLOBAL_OWNER, &encode_dict_infos(registry));
    writer.push_block(BK_OBSERVERS, GLOBAL_OWNER, &encode_observer_directory(&output.logs));
    for (idx, log) in output.logs.iter().enumerate() {
        let owner = u32::try_from(idx).expect("observer count exceeds u32");
        let table = log.table();
        writer.push_block(BK_COL_AT, owner, &encode_col_at(table.ats()));
        writer.push_block(BK_COL_KIND, owner, &encode_col_kind(table.kinds()));
        writer.push_block(BK_COL_PEER_SLOT, owner, &encode_col_u32s(table.peer_slots()));
        writer.push_block(BK_COL_CONN, owner, &encode_col_conn(table.conns()));
        writer.push_block(BK_COL_PAYLOAD, owner, &encode_col_u32s(table.payloads()));
    }
    writer.push_block(BK_GROUND_TRUTH, GLOBAL_OWNER, &encode_ground_truth(&output.ground_truth));
    writer.push_block(BK_DHT, GLOBAL_OWNER, &encode_dht(&output.dht));
    Ok(writer.finish())
}

/// Parses an archive and reconstructs the simulation output plus the opaque
/// metadata block, verifying every block checksum on the way.
///
/// The reconstructed output is value-identical to the one that was encoded:
/// same registry ids, same column contents, same ground truth and DHT
/// history — which is what makes re-analysis byte-identical to the direct
/// simulation path.
pub fn decode_output(bytes: &[u8]) -> Result<(Vec<u8>, SimulationOutput), ArchiveError> {
    let file = ArchiveFile::parse(bytes)?;
    let meta = file.block(BK_META, GLOBAL_OWNER)?.to_vec();
    let registry = decode_registry(
        file.block(BK_DICT_PEERS, GLOBAL_OWNER)?,
        file.block(BK_DICT_ADDRS, GLOBAL_OWNER)?,
        file.block(BK_DICT_INFOS, GLOBAL_OWNER)?,
    )?;
    let registry = Arc::new(registry);

    let directory = file.block(BK_OBSERVERS, GLOBAL_OWNER)?;
    let mut r = ByteReader::new(directory);
    let count = r.len("observer count")?;
    let mut logs = Vec::with_capacity(count);
    for idx in 0..count {
        let observer = r.str("observer name")?.to_string();
        let peer_id = read_peer(&mut r)?;
        let dht_server = read_bool(&mut r, "observer role")?;
        let started_at = SimTime::from_millis(r.uvarint("observer start")?);
        let ended_at = SimTime::from_millis(r.uvarint("observer end")?);
        let owner = u32::try_from(idx).expect("observer count exceeds u32");
        let at = decode_col_at(file.block(BK_COL_AT, owner)?)?;
        let kind = decode_col_kind(file.block(BK_COL_KIND, owner)?)?;
        let peer_slot = decode_col_u32s(file.block(BK_COL_PEER_SLOT, owner)?, "peer-slot column")?;
        let conn = decode_col_conn(file.block(BK_COL_CONN, owner)?)?;
        let payload = decode_col_u32s(file.block(BK_COL_PAYLOAD, owner)?, "payload column")?;
        if kind.len() != at.len()
            || peer_slot.len() != at.len()
            || conn.len() != at.len()
            || payload.len() != at.len()
        {
            return Err(malformed(format!(
                "column lengths disagree for observer {observer}"
            )));
        }
        let table = ObservationTable::from_columns(at, kind, peer_slot, conn, payload);
        logs.push(ObserverLog::from_columns(
            observer,
            peer_id,
            dht_server,
            started_at,
            ended_at,
            table,
            Arc::clone(&registry),
        ));
    }
    r.finish("observer directory")?;

    let ground_truth = decode_ground_truth(file.block(BK_GROUND_TRUTH, GLOBAL_OWNER)?)?;
    let dht = decode_dht(file.block(BK_DHT, GLOBAL_OWNER)?)?;
    Ok((meta, SimulationOutput::from_logs(logs, ground_truth, dht)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::ObservationSink;
    use p2pmodel::{CloseReason, ConnectionId, Direction};

    #[test]
    fn varints_roundtrip() {
        let mut w = ByteWriter::new();
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        for &v in &values {
            w.put_uvarint(v);
        }
        let signed = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        for &v in &signed {
            w.put_ivarint(v);
        }
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        for &v in &values {
            assert_eq!(r.uvarint("test").unwrap(), v);
        }
        for &v in &signed {
            assert_eq!(r.ivarint("test").unwrap(), v);
        }
        r.finish("test").unwrap();
    }

    #[test]
    fn reader_reports_truncation() {
        let mut w = ByteWriter::new();
        w.put_u64(7);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..5]);
        assert!(matches!(
            r.u64("test"),
            Err(ArchiveError::Truncated { .. })
        ));
    }

    #[test]
    fn block_container_roundtrips_and_seeks() {
        let mut w = ArchiveWriter::new();
        w.push_block(BK_META, GLOBAL_OWNER, b"hello");
        w.push_block(BK_COL_AT, 0, b"column zero");
        w.push_block(BK_COL_AT, 1, b"column one");
        let bytes = w.finish();
        let file = ArchiveFile::parse(&bytes).unwrap();
        assert_eq!(file.blocks().len(), 3);
        assert_eq!(file.block(BK_META, GLOBAL_OWNER).unwrap(), b"hello");
        assert_eq!(file.block(BK_COL_AT, 1).unwrap(), b"column one");
        assert_eq!(
            file.block(BK_DHT, GLOBAL_OWNER),
            Err(ArchiveError::MissingBlock {
                kind: BK_DHT,
                owner: GLOBAL_OWNER
            })
        );
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut w = ArchiveWriter::new();
        w.push_block(BK_META, GLOBAL_OWNER, b"x");
        let mut bytes = w.finish();
        bytes[8] = 0xEE; // version field
        assert!(matches!(
            ArchiveFile::parse(&bytes),
            Err(ArchiveError::UnsupportedVersion { found }) if found != FORMAT_VERSION
        ));
    }

    #[test]
    fn bit_flip_in_block_fails_checksum() {
        let mut w = ArchiveWriter::new();
        w.push_block(BK_META, GLOBAL_OWNER, b"precious payload");
        let mut bytes = w.finish();
        bytes[12] ^= 0x01; // first payload byte (after 12-byte header)
        let file = ArchiveFile::parse(&bytes).unwrap();
        assert!(matches!(
            file.block(BK_META, GLOBAL_OWNER),
            Err(ArchiveError::ChecksumMismatch { kind: BK_META, .. })
        ));
    }

    #[test]
    fn truncated_tail_fails_cleanly() {
        let mut w = ArchiveWriter::new();
        w.push_block(BK_META, GLOBAL_OWNER, b"x");
        let bytes = w.finish();
        for cut in [bytes.len() - 1, bytes.len() - 9, 13, 11, 3] {
            let err = ArchiveFile::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    ArchiveError::Truncated { .. }
                        | ArchiveError::BadMagic { .. }
                        | ArchiveError::ChecksumMismatch { .. }
                        | ArchiveError::Malformed { .. }
                ),
                "cut at {cut} produced {err:?}"
            );
        }
    }

    #[test]
    fn timestamp_column_roundtrips_unsorted_input() {
        let mut table = ObservationTable::new();
        for &t in &[5u64, 0, 9, 9, 2] {
            table.identify_received(SimTime::from_millis(t), 0, 0);
        }
        let decoded = decode_col_at(&encode_col_at(table.ats())).unwrap();
        assert_eq!(decoded, table.ats());
    }

    fn wire_sample_table() -> ObservationTable {
        let mut table = ObservationTable::new();
        table.connection_opened(SimTime::from_secs(1), ConnectionId(3), 0, Direction::Inbound, 2);
        table.identify_received(SimTime::from_secs(2), 0, 1);
        table.peer_discovered(SimTime::from_secs(2), 1, 4);
        table.connection_closed(SimTime::from_secs(9), ConnectionId(3), 0, CloseReason::PeerLeft);
        table.connection_opened(SimTime::from_secs(11), ConnectionId(8), 1, Direction::Outbound, 4);
        table
    }

    #[test]
    fn event_block_roundtrips_every_row_range() {
        let table = wire_sample_table();
        for from in 0..=table.len() {
            for to in from..=table.len() {
                let decoded = decode_event_block(&encode_event_block(&table, from, to)).unwrap();
                assert_eq!(decoded.len(), to - from, "range {from}..{to}");
                assert_eq!(decoded.ats(), &table.ats()[from..to]);
                assert_eq!(decoded.kinds(), &table.kinds()[from..to]);
                assert_eq!(decoded.peer_slots(), &table.peer_slots()[from..to]);
                assert_eq!(decoded.conns(), &table.conns()[from..to]);
                assert_eq!(decoded.payloads(), &table.payloads()[from..to]);
            }
        }
    }

    #[test]
    fn event_block_rejects_corruption() {
        let table = wire_sample_table();
        let block = encode_event_block(&table, 0, table.len());
        for cut in [0, 1, block.len() / 2, block.len() - 1] {
            assert!(
                decode_event_block(&block[..cut]).is_err(),
                "cut at {cut} was accepted"
            );
        }
        let mut trailing = block.clone();
        trailing.push(0);
        assert!(matches!(
            decode_event_block(&trailing),
            Err(ArchiveError::Malformed { .. })
        ));
    }

    fn wire_sample_registry(peers: u64, addrs: u16, infos: u8) -> IdentifyRegistry {
        let mut registry = IdentifyRegistry::new();
        for i in 0..peers {
            registry.register_peer(PeerId::derived(100 + i));
        }
        for i in 0..addrs {
            registry.intern_addr(Multiaddr::new(IpAddress::V4(i as u32), Transport::Tcp, 4001));
        }
        for i in 0..infos {
            registry.intern_identify(&IdentifyInfo::new(
                AgentVersion::parse(&format!("go-ipfs/0.{i}.0/wire")),
                ProtocolSet::go_ipfs_dht_server(),
                vec![],
            ));
        }
        registry
    }

    #[test]
    fn registry_delta_streams_incrementally() {
        let small = wire_sample_registry(2, 1, 1);
        let mut mirror = IdentifyRegistry::new();
        apply_registry_delta(&mut mirror, &encode_registry_delta(&small, 0, 0, 0)).unwrap();
        assert_eq!(mirror.peer_count(), 2);
        assert_eq!(mirror.addr_count(), 1);
        assert_eq!(mirror.identify_count(), 1);

        let grown = wire_sample_registry(4, 3, 2);
        apply_registry_delta(&mut mirror, &encode_registry_delta(&grown, 2, 1, 1)).unwrap();
        assert_eq!(mirror.peer_count(), 4);
        for slot in 0..4u32 {
            assert_eq!(mirror.peer(slot), grown.peer(slot));
        }
        for id in 0..3u32 {
            assert_eq!(mirror.addr(id), grown.addr(id));
        }
        for id in 0..2u32 {
            assert_eq!(mirror.identify(id), grown.identify(id));
        }
    }

    #[test]
    fn registry_delta_rejects_base_mismatch_and_duplicates() {
        let registry = wire_sample_registry(3, 2, 1);
        let delta = encode_registry_delta(&registry, 2, 1, 1);
        let mut behind = wire_sample_registry(1, 1, 1);
        assert!(matches!(
            apply_registry_delta(&mut behind, &delta),
            Err(ArchiveError::Malformed { .. })
        ));

        // Hand-craft a delta whose base matches but whose entry duplicates an
        // existing peer: the registry would dedup it to an old slot, silently
        // desyncing ids, so the decoder must reject it instead.
        let mut receiver = wire_sample_registry(1, 0, 0);
        let mut w = ByteWriter::new();
        w.put_uvarint(1); // peer base
        w.put_uvarint(0); // addr base
        w.put_uvarint(0); // identify base
        w.put_uvarint(1); // one "new" peer...
        put_peer(&mut w, &receiver.peer(0)); // ...that is already interned
        w.put_uvarint(0);
        w.put_uvarint(0);
        assert!(matches!(
            apply_registry_delta(&mut receiver, &w.into_bytes()),
            Err(ArchiveError::Malformed { .. })
        ));

        let mut truncated = wire_sample_registry(2, 1, 1);
        let full = encode_registry_delta(&wire_sample_registry(3, 2, 1), 2, 1, 1);
        assert!(apply_registry_delta(&mut truncated, &full[..full.len() - 1]).is_err());
    }

    fn sample_output() -> SimulationOutput {
        let mut registry = IdentifyRegistry::new();
        let peer = PeerId::derived(42);
        let slot = registry.register_peer(peer);
        let addr_id = registry.intern_addr(Multiaddr::new(IpAddress::V4(9), Transport::Quic, 4001));
        let info_id = registry.intern_identify(&IdentifyInfo::new(
            AgentVersion::parse("go-ipfs/0.11.0/abcd"),
            ProtocolSet::go_ipfs_dht_server(),
            vec![Multiaddr::new(IpAddress::V6(77), Transport::Ws, 443)],
        ));
        let mut table = ObservationTable::new();
        table.connection_opened(SimTime::from_secs(1), ConnectionId(3), slot, Direction::Inbound, addr_id);
        table.identify_received(SimTime::from_secs(2), slot, info_id);
        table.connection_closed(SimTime::from_secs(9), ConnectionId(3), slot, CloseReason::PeerLeft);
        let registry = Arc::new(registry);
        let log = ObserverLog::from_columns(
            "go-ipfs",
            PeerId::derived(1),
            true,
            SimTime::ZERO,
            SimTime::from_secs(10),
            table,
            Arc::clone(&registry),
        );
        let ground_truth = GroundTruth {
            peers: vec![(peer, true)],
            events: vec![
                GroundTruthEvent::PeerOnline {
                    at: SimTime::ZERO,
                    peer,
                },
                GroundTruthEvent::RoleChanged {
                    at: SimTime::from_secs(5),
                    peer,
                    dht_server: false,
                },
                GroundTruthEvent::PeerOffline {
                    at: SimTime::from_secs(9),
                    peer,
                },
            ],
        };
        let dht = DhtLog {
            k: 20,
            bootstrap: vec![PeerId::derived(1)],
            conduct: vec![
                (PeerId::derived(7), DhtConduct::Sybil { cluster: 3 }),
                (PeerId::derived(8), DhtConduct::Poison { junk_per_reply: 5 }),
            ],
            events: vec![
                DhtEvent::Up {
                    at: SimTime::ZERO,
                    server: peer,
                },
                DhtEvent::Admit {
                    at: SimTime::from_secs(1),
                    owner: peer,
                    entry: PeerId::derived(7),
                },
                DhtEvent::Evict {
                    at: SimTime::from_secs(2),
                    owner: peer,
                    entry: PeerId::derived(7),
                },
                DhtEvent::Down {
                    at: SimTime::from_secs(9),
                    server: peer,
                },
            ],
        };
        SimulationOutput::from_logs(vec![log], ground_truth, dht)
    }

    #[test]
    fn whole_output_roundtrips_exactly() {
        let output = sample_output();
        let bytes = encode_output(&output, b"campaign meta").unwrap();
        let (meta, decoded) = decode_output(&bytes).unwrap();
        assert_eq!(meta, b"campaign meta");
        assert_eq!(decoded.logs.len(), output.logs.len());
        for (a, b) in decoded.logs.iter().zip(output.logs.iter()) {
            assert_eq!(a, b);
            assert_eq!(a.table().checksum(), b.table().checksum());
            // Registry ids must survive verbatim, not just the resolved
            // values: monitors compare raw ids on the hot path.
            assert_eq!(a.table().peer_slots(), b.table().peer_slots());
            assert_eq!(a.table().payloads(), b.table().payloads());
        }
        assert_eq!(decoded.ground_truth, output.ground_truth);
        assert_eq!(decoded.dht, output.dht);
    }

    #[test]
    fn empty_output_roundtrips() {
        let output = SimulationOutput::from_logs(Vec::new(), GroundTruth::default(), DhtLog::default());
        let bytes = encode_output(&output, b"").unwrap();
        let (meta, decoded) = decode_output(&bytes).unwrap();
        assert!(meta.is_empty());
        assert!(decoded.logs.is_empty());
        assert_eq!(decoded.ground_truth, GroundTruth::default());
    }
}
