//! The columnar observation pipeline.
//!
//! The paper's central observation is that *connection churn dwarfs node
//! churn*: a measurement log holds orders of magnitude more events than the
//! network holds peers. Materialising every event as a tagged
//! [`ObservedEvent`](crate::ObservedEvent) enum — with a full
//! [`IdentifyInfo`] clone per identify push — made per-event heap traffic the
//! scaling bottleneck. This module replaces that representation with three
//! pieces:
//!
//! * [`ObservationSink`] — the trait the engine emits observations into.
//!   The engine never builds `ObservedEvent` values; it calls one sink
//!   method per observation with plain ids.
//! * [`IdentifyRegistry`] — interns every distinct [`IdentifyInfo`],
//!   [`Multiaddr`] and [`PeerId`] once and hands out dense `u32` ids. An
//!   identify push records a 4-byte payload id instead of cloning the
//!   payload (agent string, protocol set, address list).
//! * [`ObservationTable`] — the struct-of-arrays backing store: parallel
//!   `at` / `kind` / `peer_slot` / `conn` / `payload` columns, 25 bytes per
//!   event, no per-event heap allocation.
//!
//! [`ObserverLog`](crate::ObserverLog) wraps a table plus a shared registry
//! and keeps yielding the classic `ObservedEvent` shape for analyses that do
//! not need hardware-speed access; hot consumers (the measurement monitors,
//! the scale harness) read the columns directly.

use p2pmodel::{CloseReason, ConnectionId, Direction, IdentifyInfo, Multiaddr, PeerId};
use simclock::SimTime;
use std::collections::HashMap;

/// The kind discriminant of one observation row (one byte per event).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ObservationKind {
    /// An inbound connection was opened; `payload` is the remote address id.
    OpenedInbound = 0,
    /// An outbound connection was opened; `payload` is the remote address id.
    OpenedOutbound = 1,
    /// A connection was closed; `payload` encodes the [`CloseReason`].
    Closed = 2,
    /// An identify payload was received; `payload` is the identify id.
    Identify = 3,
    /// The peer was discovered without a connection; `payload` is the
    /// address id.
    Discovered = 4,
}

impl ObservationKind {
    /// The direction of an open event, if this is one.
    pub fn direction(self) -> Option<Direction> {
        match self {
            ObservationKind::OpenedInbound => Some(Direction::Inbound),
            ObservationKind::OpenedOutbound => Some(Direction::Outbound),
            _ => None,
        }
    }

    /// Decodes a discriminant byte written by `kind as u8` — the inverse the
    /// archive reader needs. Returns `None` for bytes no kind maps to.
    pub fn from_u8(byte: u8) -> Option<ObservationKind> {
        match byte {
            0 => Some(ObservationKind::OpenedInbound),
            1 => Some(ObservationKind::OpenedOutbound),
            2 => Some(ObservationKind::Closed),
            3 => Some(ObservationKind::Identify),
            4 => Some(ObservationKind::Discovered),
            _ => None,
        }
    }
}

/// Narrows a length to the dense `u32` id space the columnar pipeline uses.
///
/// Registry ids and table row indices are deliberately 4 bytes — that is
/// where the 25 B/event figure comes from — so the pipeline caps out at
/// 2^32 - 1 entries per id space. The 10M-peer full-protocol campaign logs
/// ~108.7M events, two orders of magnitude below the cap, but a silent
/// `as u32` wrap past 4.29B entries would corrupt every id after it; this
/// guard turns that into a loud panic naming the exhausted space.
fn dense_id(len: usize, space: &str) -> u32 {
    u32::try_from(len).unwrap_or_else(|_| {
        panic!("{space} capacity exceeded: {len} entries do not fit the dense u32 id space (max {})", u32::MAX)
    })
}

/// Packs a [`CloseReason`] into the 4-byte payload column.
pub fn close_reason_to_payload(reason: CloseReason) -> u32 {
    match reason {
        CloseReason::TrimmedLocal => 0,
        CloseReason::TrimmedRemote => 1,
        CloseReason::PeerLeft => 2,
        CloseReason::MeasurementEnd => 3,
    }
}

/// Unpacks a payload written by [`close_reason_to_payload`].
///
/// # Panics
///
/// Panics on a payload value no close reason maps to; the table only ever
/// stores values produced by the packing function.
pub fn close_reason_from_payload(payload: u32) -> CloseReason {
    match payload {
        0 => CloseReason::TrimmedLocal,
        1 => CloseReason::TrimmedRemote,
        2 => CloseReason::PeerLeft,
        3 => CloseReason::MeasurementEnd,
        other => panic!("invalid close-reason payload {other}"),
    }
}

/// The sink the simulation engine emits observations into.
///
/// One implementation is [`ObservationTable`] (the columnar store every
/// [`crate::Network::run`] uses); custom sinks — counters, stream writers —
/// can be plugged in through [`crate::Network::run_with_sinks`] to measure
/// pure engine throughput or to stream events out without buffering them.
///
/// All ids refer to the run's [`IdentifyRegistry`]: `peer_slot` is the
/// registry slot of the remote peer, `addr_id` an interned multiaddress and
/// `payload_id` an interned identify payload.
pub trait ObservationSink {
    /// A connection to the peer in `peer_slot` was opened.
    fn connection_opened(
        &mut self,
        at: SimTime,
        conn: ConnectionId,
        peer_slot: u32,
        direction: Direction,
        addr_id: u32,
    );

    /// A connection was closed.
    fn connection_closed(&mut self, at: SimTime, conn: ConnectionId, peer_slot: u32, reason: CloseReason);

    /// An identify payload (registry id `payload_id`) was received.
    fn identify_received(&mut self, at: SimTime, peer_slot: u32, payload_id: u32);

    /// The peer was discovered through routing gossip without a connection.
    fn peer_discovered(&mut self, at: SimTime, peer_slot: u32, addr_id: u32);
}

/// Interning store shared by every observer of one simulation run.
///
/// Each distinct [`PeerId`], [`Multiaddr`] and [`IdentifyInfo`] is stored
/// once; observations refer to it by a dense `u32` id. Interning the same
/// value twice returns the same id, and ids resolve back to the exact value
/// they were created from — see the round-trip property test in
/// `tests/columnar.rs`.
#[derive(Debug, Clone, Default)]
pub struct IdentifyRegistry {
    peers: Vec<PeerId>,
    peer_slots: HashMap<PeerId, u32>,
    addrs: Vec<Multiaddr>,
    addr_ids: HashMap<Multiaddr, u32>,
    infos: Vec<IdentifyInfo>,
    info_ids: HashMap<IdentifyInfo, u32>,
}

impl IdentifyRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry pre-sized for a population of `peers` peers.
    pub fn with_capacity(peers: usize) -> Self {
        IdentifyRegistry {
            peers: Vec::with_capacity(peers),
            peer_slots: HashMap::with_capacity(peers),
            ..Self::default()
        }
    }

    /// Rebuilds a registry from its interned value vectors, in id order —
    /// the archive reader's path. `peers[i]` gets slot `i`, `addrs[i]` id
    /// `i`, `infos[i]` id `i`, exactly as the original interning handed them
    /// out, so every id stored in an archived [`ObservationTable`] resolves
    /// to the same value it was created from.
    ///
    /// # Panics
    ///
    /// Panics if any vector contains a duplicate value: interning guarantees
    /// distinctness, so a duplicate means the dictionary data is not a
    /// registry image.
    pub fn from_parts(peers: Vec<PeerId>, addrs: Vec<Multiaddr>, infos: Vec<IdentifyInfo>) -> Self {
        let peer_slots: HashMap<PeerId, u32> = peers
            .iter()
            .enumerate()
            .map(|(slot, peer)| (*peer, dense_id(slot, "IdentifyRegistry peer-slot")))
            .collect();
        assert_eq!(peer_slots.len(), peers.len(), "duplicate peer in registry image");
        let addr_ids: HashMap<Multiaddr, u32> = addrs
            .iter()
            .enumerate()
            .map(|(id, addr)| (*addr, dense_id(id, "IdentifyRegistry address-id")))
            .collect();
        assert_eq!(addr_ids.len(), addrs.len(), "duplicate address in registry image");
        let info_ids: HashMap<IdentifyInfo, u32> = infos
            .iter()
            .enumerate()
            .map(|(id, info)| (info.clone(), dense_id(id, "IdentifyRegistry identify-id")))
            .collect();
        assert_eq!(info_ids.len(), infos.len(), "duplicate identify payload in registry image");
        IdentifyRegistry {
            peers,
            peer_slots,
            addrs,
            addr_ids,
            infos,
            info_ids,
        }
    }

    /// Registers a peer and returns its slot; registering the same peer
    /// again returns the existing slot.
    pub fn register_peer(&mut self, peer: PeerId) -> u32 {
        if let Some(&slot) = self.peer_slots.get(&peer) {
            return slot;
        }
        let slot = dense_id(self.peers.len(), "IdentifyRegistry peer-slot");
        self.peers.push(peer);
        self.peer_slots.insert(peer, slot);
        slot
    }

    /// Resolves a peer slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never handed out by this registry.
    pub fn peer(&self, slot: u32) -> PeerId {
        self.peers[slot as usize]
    }

    /// The slot of a registered peer, if any.
    pub fn slot_of(&self, peer: &PeerId) -> Option<u32> {
        self.peer_slots.get(peer).copied()
    }

    /// Number of registered peers.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Interns a multiaddress and returns its id.
    pub fn intern_addr(&mut self, addr: Multiaddr) -> u32 {
        if let Some(&id) = self.addr_ids.get(&addr) {
            return id;
        }
        let id = dense_id(self.addrs.len(), "IdentifyRegistry address-id");
        self.addrs.push(addr);
        self.addr_ids.insert(addr, id);
        id
    }

    /// Resolves an address id.
    ///
    /// # Panics
    ///
    /// Panics if the id was never handed out by this registry.
    pub fn addr(&self, id: u32) -> Multiaddr {
        self.addrs[id as usize]
    }

    /// Number of distinct interned addresses.
    pub fn addr_count(&self) -> usize {
        self.addrs.len()
    }

    /// Interns an identify payload and returns its id. The payload is cloned
    /// only on first insertion; every later intern of an equal payload is a
    /// hash lookup.
    pub fn intern_identify(&mut self, info: &IdentifyInfo) -> u32 {
        if let Some(&id) = self.info_ids.get(info) {
            return id;
        }
        let id = dense_id(self.infos.len(), "IdentifyRegistry identify-id");
        self.infos.push(info.clone());
        self.info_ids.insert(info.clone(), id);
        id
    }

    /// Resolves an identify id.
    ///
    /// # Panics
    ///
    /// Panics if the id was never handed out by this registry.
    pub fn identify(&self, id: u32) -> &IdentifyInfo {
        &self.infos[id as usize]
    }

    /// Number of distinct interned identify payloads.
    pub fn identify_count(&self) -> usize {
        self.infos.len()
    }

    /// Approximate resident bytes of the registry (interned values plus the
    /// lookup indices). Part of the bytes-per-event accounting in the scale
    /// harness; see `docs/ARCHITECTURE.md`.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let peer_bytes = self.peers.len() * (size_of::<PeerId>() * 2 + size_of::<u32>());
        let addr_bytes = self.addrs.len() * (size_of::<Multiaddr>() * 2 + size_of::<u32>());
        let info_bytes: usize = self
            .infos
            .iter()
            .map(|info| 2 * (size_of::<IdentifyInfo>() + identify_heap_bytes(info)) + size_of::<u32>())
            .sum();
        peer_bytes + addr_bytes + info_bytes
    }
}

/// Approximate heap bytes owned by one [`IdentifyInfo`] (agent strings,
/// protocol-set nodes, address list). Used for the bytes-per-event accounting
/// of the enum representation, where every identify event carried a deep
/// clone of this payload.
pub fn identify_heap_bytes(info: &IdentifyInfo) -> usize {
    use std::mem::size_of;
    let agent_bytes = match &info.agent {
        p2pmodel::AgentVersion::GoIpfs { commit, version, .. } => {
            commit.as_deref().map_or(0, str::len)
                + version.pre.as_deref().map_or(0, str::len)
        }
        p2pmodel::AgentVersion::Other(s) => s.len(),
        p2pmodel::AgentVersion::Missing => 0,
    };
    // One string allocation plus ~3 words of BTreeSet node overhead per
    // protocol id — an estimate, but the same estimate for both sides of the
    // comparison.
    let protocol_bytes: usize = info
        .protocols
        .iter()
        .map(|p| p.as_str().len() + size_of::<String>() + 3 * size_of::<usize>())
        .sum();
    let addr_bytes = info.listen_addrs.capacity() * size_of::<Multiaddr>();
    agent_bytes + protocol_bytes + addr_bytes
}

/// The struct-of-arrays observation store: one row per observed event, split
/// into five parallel columns.
///
/// | column      | type           | meaning                                          |
/// |-------------|----------------|--------------------------------------------------|
/// | `at`        | `SimTime` (8B) | event timestamp                                  |
/// | `kind`      | `u8`           | [`ObservationKind`] discriminant                 |
/// | `peer_slot` | `u32`          | registry slot of the remote peer                 |
/// | `conn`      | `u64`          | connection id, or `NO_CONN` for non-conn events  |
/// | `payload`   | `u32`          | addr id / identify id / packed close reason      |
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObservationTable {
    at: Vec<SimTime>,
    kind: Vec<ObservationKind>,
    peer_slot: Vec<u32>,
    conn: Vec<u64>,
    payload: Vec<u32>,
}

/// The `conn` column value of rows that do not concern a connection.
pub const NO_CONN: u64 = u64::MAX;

impl ObservationTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserves room for `additional` more events in every column.
    pub fn reserve(&mut self, additional: usize) {
        self.at.reserve(additional);
        self.kind.reserve(additional);
        self.peer_slot.reserve(additional);
        self.conn.reserve(additional);
        self.payload.reserve(additional);
    }

    fn push_row(&mut self, at: SimTime, kind: ObservationKind, peer_slot: u32, conn: u64, payload: u32) {
        self.at.push(at);
        self.kind.push(kind);
        self.peer_slot.push(peer_slot);
        self.conn.push(conn);
        self.payload.push(payload);
    }

    /// Number of events in the table.
    pub fn len(&self) -> usize {
        self.at.len()
    }

    /// Whether the table holds no events.
    pub fn is_empty(&self) -> bool {
        self.at.is_empty()
    }

    /// The timestamp column.
    pub fn ats(&self) -> &[SimTime] {
        &self.at
    }

    /// The kind column.
    pub fn kinds(&self) -> &[ObservationKind] {
        &self.kind
    }

    /// The peer-slot column.
    pub fn peer_slots(&self) -> &[u32] {
        &self.peer_slot
    }

    /// The connection-id column ([`NO_CONN`] for non-connection rows).
    pub fn conns(&self) -> &[u64] {
        &self.conn
    }

    /// The payload column.
    pub fn payloads(&self) -> &[u32] {
        &self.payload
    }

    /// Timestamp of row `i`.
    pub fn at(&self, i: usize) -> SimTime {
        self.at[i]
    }

    /// Kind of row `i`.
    pub fn kind_at(&self, i: usize) -> ObservationKind {
        self.kind[i]
    }

    /// Peer slot of row `i`.
    pub fn peer_slot_at(&self, i: usize) -> u32 {
        self.peer_slot[i]
    }

    /// Connection id of row `i` (`None` for non-connection rows).
    pub fn conn_at(&self, i: usize) -> Option<ConnectionId> {
        match self.conn[i] {
            NO_CONN => None,
            id => Some(ConnectionId(id)),
        }
    }

    /// Payload of row `i`.
    pub fn payload_at(&self, i: usize) -> u32 {
        self.payload[i]
    }

    /// Resident bytes of the column storage (capacity-based, the peak-RSS
    /// proxy the scale harness reports).
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.at.capacity() * size_of::<SimTime>()
            + self.kind.capacity() * size_of::<ObservationKind>()
            + self.peer_slot.capacity() * size_of::<u32>()
            + self.conn.capacity() * size_of::<u64>()
            + self.payload.capacity() * size_of::<u32>()
    }

    /// Bytes of one row across all columns (the marginal cost of an event).
    pub const fn bytes_per_event() -> usize {
        use std::mem::size_of;
        size_of::<SimTime>()
            + size_of::<ObservationKind>()
            + size_of::<u32>()
            + size_of::<u64>()
            + size_of::<u32>()
    }

    /// Whether the `at` column is already non-decreasing.
    pub fn is_sorted_by_time(&self) -> bool {
        self.at.windows(2).all(|w| w[0] <= w[1])
    }

    /// Stable-sorts all columns by timestamp. The engine emits events in
    /// simulation order, which is already chronological, so the common case
    /// is a single O(n) sortedness check; manually built tables pay one
    /// index permutation.
    pub fn stable_sort_by_time(&mut self) {
        if self.is_sorted_by_time() {
            return;
        }
        let n = self.len();
        let _ = dense_id(n, "ObservationTable row-index");
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&i| self.at[i as usize]);
        // Apply the permutation in place by walking its cycles: each row is
        // written exactly once, the columns keep their allocations, and the
        // scratch space is the order vec plus one visited bit per row —
        // instead of five freshly collected column copies (which doubled
        // peak memory on the archive write path).
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] || order[start] as usize == start {
                visited[start] = true;
                continue;
            }
            let tmp = (
                self.at[start],
                self.kind[start],
                self.peer_slot[start],
                self.conn[start],
                self.payload[start],
            );
            let mut dst = start;
            loop {
                let src = order[dst] as usize;
                visited[dst] = true;
                if src == start {
                    self.at[dst] = tmp.0;
                    self.kind[dst] = tmp.1;
                    self.peer_slot[dst] = tmp.2;
                    self.conn[dst] = tmp.3;
                    self.payload[dst] = tmp.4;
                    break;
                }
                self.at[dst] = self.at[src];
                self.kind[dst] = self.kind[src];
                self.peer_slot[dst] = self.peer_slot[src];
                self.conn[dst] = self.conn[src];
                self.payload[dst] = self.payload[src];
                dst = src;
            }
        }
    }

    /// Reassembles a table from raw column vectors — the archive reader's
    /// path. The columns must be parallel (equal lengths) and are adopted
    /// as-is; pair with the column accessors ([`Self::ats`] & co.) on the
    /// write side.
    ///
    /// # Panics
    ///
    /// Panics if the column lengths disagree.
    pub fn from_columns(
        at: Vec<SimTime>,
        kind: Vec<ObservationKind>,
        peer_slot: Vec<u32>,
        conn: Vec<u64>,
        payload: Vec<u32>,
    ) -> Self {
        let n = at.len();
        assert!(
            kind.len() == n && peer_slot.len() == n && conn.len() == n && payload.len() == n,
            "observation columns must be parallel: at={n} kind={} peer_slot={} conn={} payload={}",
            kind.len(),
            peer_slot.len(),
            conn.len(),
            payload.len()
        );
        ObservationTable {
            at,
            kind,
            peer_slot,
            conn,
            payload,
        }
    }

    /// FNV-1a checksum over all columns — a cheap, order-sensitive
    /// fingerprint the scale harness uses to assert determinism across
    /// thread counts without materialising events.
    pub fn checksum(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        };
        for i in 0..self.len() {
            for b in self.at[i].as_millis().to_le_bytes() {
                mix(b);
            }
            mix(self.kind[i] as u8);
            for b in self.peer_slot[i].to_le_bytes() {
                mix(b);
            }
            for b in self.conn[i].to_le_bytes() {
                mix(b);
            }
            for b in self.payload[i].to_le_bytes() {
                mix(b);
            }
        }
        hash
    }
}

impl ObservationSink for ObservationTable {
    fn connection_opened(
        &mut self,
        at: SimTime,
        conn: ConnectionId,
        peer_slot: u32,
        direction: Direction,
        addr_id: u32,
    ) {
        let kind = match direction {
            Direction::Inbound => ObservationKind::OpenedInbound,
            Direction::Outbound => ObservationKind::OpenedOutbound,
        };
        self.push_row(at, kind, peer_slot, conn.0, addr_id);
    }

    fn connection_closed(&mut self, at: SimTime, conn: ConnectionId, peer_slot: u32, reason: CloseReason) {
        self.push_row(
            at,
            ObservationKind::Closed,
            peer_slot,
            conn.0,
            close_reason_to_payload(reason),
        );
    }

    fn identify_received(&mut self, at: SimTime, peer_slot: u32, payload_id: u32) {
        self.push_row(at, ObservationKind::Identify, peer_slot, NO_CONN, payload_id);
    }

    fn peer_discovered(&mut self, at: SimTime, peer_slot: u32, addr_id: u32) {
        self.push_row(at, ObservationKind::Discovered, peer_slot, NO_CONN, addr_id);
    }
}

/// A fan-out sink: forwards every observation to two child sinks.
///
/// This is how a streaming consumer runs *concurrently* with the classic
/// buffering pipeline in a single simulation: tee the engine's emissions into
/// an [`ObservationTable`] (for the batch `MeasurementDataset` path) and into
/// an incremental estimator (`measurement::stream`) at the same time, paying
/// for one engine run instead of two. Tees nest, so any fan-out degree is
/// expressible as `TeeSink<A, TeeSink<B, C>>`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TeeSink<A, B> {
    /// The first child sink.
    pub first: A,
    /// The second child sink.
    pub second: B,
}

impl<A, B> TeeSink<A, B> {
    /// Creates a tee over two child sinks.
    pub fn new(first: A, second: B) -> Self {
        TeeSink { first, second }
    }

    /// Consumes the tee and returns both child sinks.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: ObservationSink, B: ObservationSink> ObservationSink for TeeSink<A, B> {
    fn connection_opened(
        &mut self,
        at: SimTime,
        conn: ConnectionId,
        peer_slot: u32,
        direction: Direction,
        addr_id: u32,
    ) {
        self.first.connection_opened(at, conn, peer_slot, direction, addr_id);
        self.second.connection_opened(at, conn, peer_slot, direction, addr_id);
    }

    fn connection_closed(&mut self, at: SimTime, conn: ConnectionId, peer_slot: u32, reason: CloseReason) {
        self.first.connection_closed(at, conn, peer_slot, reason);
        self.second.connection_closed(at, conn, peer_slot, reason);
    }

    fn identify_received(&mut self, at: SimTime, peer_slot: u32, payload_id: u32) {
        self.first.identify_received(at, peer_slot, payload_id);
        self.second.identify_received(at, peer_slot, payload_id);
    }

    fn peer_discovered(&mut self, at: SimTime, peer_slot: u32, addr_id: u32) {
        self.first.peer_discovered(at, peer_slot, addr_id);
        self.second.peer_discovered(at, peer_slot, addr_id);
    }
}

/// A sink that only counts events — used by the scale harness to measure
/// pure engine throughput with zero observation-storage cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountingSink {
    /// Connection-open events seen.
    pub opened: u64,
    /// Connection-close events seen.
    pub closed: u64,
    /// Identify events seen.
    pub identifies: u64,
    /// Gossip-discovery events seen.
    pub discovered: u64,
}

impl CountingSink {
    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.opened + self.closed + self.identifies + self.discovered
    }
}

impl ObservationSink for CountingSink {
    fn connection_opened(&mut self, _: SimTime, _: ConnectionId, _: u32, _: Direction, _: u32) {
        self.opened += 1;
    }

    fn connection_closed(&mut self, _: SimTime, _: ConnectionId, _: u32, _: CloseReason) {
        self.closed += 1;
    }

    fn identify_received(&mut self, _: SimTime, _: u32, _: u32) {
        self.identifies += 1;
    }

    fn peer_discovered(&mut self, _: SimTime, _: u32, _: u32) {
        self.discovered += 1;
    }
}

/// Stable global PID ↔ (shard, slot) mapping for partitioned simulations.
///
/// The cross-shard engine ([`crate::mailbox`]) partitions the global peer
/// index space `0..peers` into `shards` contiguous, balanced ranges: shard
/// sizes differ by at most one, with the remainder going to the first
/// shards (the same rule the scale harness's `shard_population` uses). The
/// mapping is a pure function of `(peers, shards)` — no allocation, no
/// lookup tables — so every shard, every worker thread and every epoch
/// agrees on who owns a peer, and merged [`ObservationTable`]s /
/// [`IdentifyRegistry`] slots stay canonical: the registry slot of a peer is
/// its *global* index, independent of the shard layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    peers: usize,
    shards: usize,
}

impl ShardMap {
    /// Creates a mapping of `peers` global indexes onto `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero.
    pub fn new(peers: usize, shards: usize) -> Self {
        assert!(shards > 0, "a shard map needs at least one shard");
        ShardMap { peers, shards }
    }

    /// Total number of peers mapped.
    pub fn peers(&self) -> usize {
        self.peers
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Peers owned by `shard`: `peers / shards`, plus one for the first
    /// `peers % shards` shards.
    pub fn count(&self, shard: usize) -> usize {
        let base = self.peers / self.shards;
        base + usize::from(shard < self.peers % self.shards)
    }

    /// First global index owned by `shard`.
    pub fn start(&self, shard: usize) -> usize {
        let base = self.peers / self.shards;
        let extra = self.peers % self.shards;
        shard * base + shard.min(extra)
    }

    /// The shard owning global index `global`.
    pub fn owner(&self, global: usize) -> usize {
        debug_assert!(global < self.peers);
        let base = self.peers / self.shards;
        let extra = self.peers % self.shards;
        let fat = extra * (base + 1);
        if global < fat {
            global / (base + 1)
        } else {
            extra + (global - fat) / base
        }
    }

    /// The owner shard's local slot of global index `global`.
    pub fn slot(&self, global: usize) -> usize {
        global - self.start(self.owner(global))
    }

    /// The global index of `(shard, slot)`.
    pub fn global(&self, shard: usize, slot: usize) -> usize {
        self.start(shard) + slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmodel::{AgentVersion, IpAddress, ProtocolSet, Transport};

    fn addr(n: u32) -> Multiaddr {
        Multiaddr::new(IpAddress::V4(n), Transport::Tcp, 4001)
    }

    fn info(version: &str) -> IdentifyInfo {
        IdentifyInfo::new(
            AgentVersion::parse(version),
            ProtocolSet::go_ipfs_dht_server(),
            Vec::new(),
        )
    }

    #[test]
    fn registry_interning_is_idempotent() {
        let mut reg = IdentifyRegistry::with_capacity(4);
        let p = PeerId::derived(7);
        let slot = reg.register_peer(p);
        assert_eq!(reg.register_peer(p), slot);
        assert_eq!(reg.peer(slot), p);
        assert_eq!(reg.slot_of(&p), Some(slot));
        assert_eq!(reg.peer_count(), 1);

        let a = reg.intern_addr(addr(1));
        assert_eq!(reg.intern_addr(addr(1)), a);
        assert_ne!(reg.intern_addr(addr(2)), a);
        assert_eq!(reg.addr(a), addr(1));
        assert_eq!(reg.addr_count(), 2);

        let i0 = reg.intern_identify(&info("go-ipfs/0.11.0/"));
        let i1 = reg.intern_identify(&info("go-ipfs/0.12.0/"));
        assert_eq!(reg.intern_identify(&info("go-ipfs/0.11.0/")), i0);
        assert_ne!(i0, i1);
        assert_eq!(reg.identify(i1), &info("go-ipfs/0.12.0/"));
        assert_eq!(reg.identify_count(), 2);
        assert!(reg.approx_bytes() > 0);
    }

    #[test]
    fn dense_id_guard_accepts_the_full_u32_space() {
        assert_eq!(dense_id(0, "test"), 0);
        assert_eq!(dense_id(u32::MAX as usize, "test"), u32::MAX);
    }

    #[test]
    #[should_panic(expected = "IdentifyRegistry peer-slot capacity exceeded")]
    fn dense_id_guard_panics_loudly_past_u32() {
        let _ = dense_id(u32::MAX as usize + 1, "IdentifyRegistry peer-slot");
    }

    #[test]
    fn registry_rebuilds_from_parts_with_identical_ids() {
        let mut reg = IdentifyRegistry::new();
        let p0 = PeerId::derived(1);
        let p1 = PeerId::derived(2);
        reg.register_peer(p0);
        reg.register_peer(p1);
        reg.intern_addr(addr(7));
        reg.intern_addr(addr(9));
        let i0 = reg.intern_identify(&info("go-ipfs/0.11.0/"));

        let peers: Vec<PeerId> = (0..reg.peer_count() as u32).map(|s| reg.peer(s)).collect();
        let addrs: Vec<Multiaddr> = (0..reg.addr_count() as u32).map(|a| reg.addr(a)).collect();
        let infos: Vec<IdentifyInfo> =
            (0..reg.identify_count() as u32).map(|i| reg.identify(i).clone()).collect();
        let rebuilt = IdentifyRegistry::from_parts(peers, addrs, infos);

        assert_eq!(rebuilt.slot_of(&p0), reg.slot_of(&p0));
        assert_eq!(rebuilt.slot_of(&p1), reg.slot_of(&p1));
        assert_eq!(rebuilt.addr(1), addr(9));
        assert_eq!(rebuilt.identify(i0), reg.identify(i0));
        // And interning continues where the original left off.
        let mut rebuilt = rebuilt;
        assert_eq!(rebuilt.intern_addr(addr(7)), 0);
        assert_eq!(rebuilt.intern_addr(addr(11)), 2);
    }

    #[test]
    #[should_panic(expected = "duplicate peer in registry image")]
    fn registry_from_parts_rejects_duplicates() {
        let p = PeerId::derived(3);
        let _ = IdentifyRegistry::from_parts(vec![p, p], Vec::new(), Vec::new());
    }

    #[test]
    fn observation_kind_byte_roundtrip() {
        for kind in [
            ObservationKind::OpenedInbound,
            ObservationKind::OpenedOutbound,
            ObservationKind::Closed,
            ObservationKind::Identify,
            ObservationKind::Discovered,
        ] {
            assert_eq!(ObservationKind::from_u8(kind as u8), Some(kind));
        }
        assert_eq!(ObservationKind::from_u8(5), None);
        assert_eq!(ObservationKind::from_u8(255), None);
    }

    #[test]
    fn close_reason_payload_roundtrip() {
        for reason in [
            CloseReason::TrimmedLocal,
            CloseReason::TrimmedRemote,
            CloseReason::PeerLeft,
            CloseReason::MeasurementEnd,
        ] {
            assert_eq!(close_reason_from_payload(close_reason_to_payload(reason)), reason);
        }
    }

    #[test]
    fn table_records_rows_in_order() {
        let mut table = ObservationTable::new();
        table.connection_opened(SimTime::from_secs(1), ConnectionId(9), 3, Direction::Inbound, 11);
        table.identify_received(SimTime::from_secs(2), 3, 5);
        table.connection_closed(SimTime::from_secs(4), ConnectionId(9), 3, CloseReason::PeerLeft);
        table.peer_discovered(SimTime::from_secs(4), 8, 12);

        assert_eq!(table.len(), 4);
        assert!(!table.is_empty());
        assert_eq!(table.kind_at(0), ObservationKind::OpenedInbound);
        assert_eq!(table.kind_at(0).direction(), Some(Direction::Inbound));
        assert_eq!(table.conn_at(0), Some(ConnectionId(9)));
        assert_eq!(table.conn_at(1), None);
        assert_eq!(table.payload_at(1), 5);
        assert_eq!(
            close_reason_from_payload(table.payload_at(2)),
            CloseReason::PeerLeft
        );
        assert_eq!(table.peer_slot_at(3), 8);
        assert!(table.is_sorted_by_time());
        assert!(table.approx_bytes() >= table.len() * ObservationTable::bytes_per_event());
    }

    #[test]
    fn stable_sort_orders_rows_and_preserves_ties() {
        let mut table = ObservationTable::new();
        table.identify_received(SimTime::from_secs(5), 1, 0);
        table.identify_received(SimTime::from_secs(1), 2, 1);
        table.identify_received(SimTime::from_secs(5), 3, 2);
        assert!(!table.is_sorted_by_time());
        table.stable_sort_by_time();
        assert!(table.is_sorted_by_time());
        // FIFO tie-break: slot 1 (payload 0) stays before slot 3 (payload 2).
        assert_eq!(table.peer_slots(), &[2, 1, 3]);
        assert_eq!(table.payloads(), &[1, 0, 2]);
    }

    #[test]
    fn in_place_sort_matches_materialising_permutation_and_keeps_allocations() {
        // A deliberately shuffled table with timestamp ties.
        let mut table = ObservationTable::new();
        let times = [9u64, 2, 7, 2, 9, 1, 7, 7, 3, 0, 2, 9];
        for (i, &t) in times.iter().enumerate() {
            table.identify_received(SimTime::from_secs(t), i as u32, i as u32 + 100);
        }

        // Reference result: the old materialising permutation.
        let mut order: Vec<usize> = (0..table.len()).collect();
        order.sort_by_key(|&i| table.ats()[i]);
        let want_at: Vec<SimTime> = order.iter().map(|&i| table.ats()[i]).collect();
        let want_slots: Vec<u32> = order.iter().map(|&i| table.peer_slots()[i]).collect();
        let want_payloads: Vec<u32> = order.iter().map(|&i| table.payloads()[i]).collect();

        let at_ptr = table.ats().as_ptr();
        let conn_ptr = table.conns().as_ptr();
        table.stable_sort_by_time();
        assert!(table.is_sorted_by_time());
        assert_eq!(table.ats(), &want_at[..]);
        assert_eq!(table.peer_slots(), &want_slots[..]);
        assert_eq!(table.payloads(), &want_payloads[..]);
        // In place: the columns still live in their original allocations.
        assert_eq!(table.ats().as_ptr(), at_ptr);
        assert_eq!(table.conns().as_ptr(), conn_ptr);
    }

    #[test]
    fn table_rebuilds_from_columns() {
        let mut table = ObservationTable::new();
        table.connection_opened(SimTime::from_secs(1), ConnectionId(9), 3, Direction::Inbound, 11);
        table.identify_received(SimTime::from_secs(2), 3, 5);
        table.connection_closed(SimTime::from_secs(4), ConnectionId(9), 3, CloseReason::PeerLeft);
        let rebuilt = ObservationTable::from_columns(
            table.ats().to_vec(),
            table.kinds().to_vec(),
            table.peer_slots().to_vec(),
            table.conns().to_vec(),
            table.payloads().to_vec(),
        );
        assert_eq!(rebuilt, table);
        assert_eq!(rebuilt.checksum(), table.checksum());
    }

    #[test]
    #[should_panic(expected = "observation columns must be parallel")]
    fn from_columns_rejects_ragged_columns() {
        let _ = ObservationTable::from_columns(
            vec![SimTime::ZERO],
            Vec::new(),
            vec![0],
            vec![NO_CONN],
            vec![0],
        );
    }

    #[test]
    fn checksum_is_order_sensitive() {
        let mut a = ObservationTable::new();
        a.identify_received(SimTime::from_secs(1), 1, 0);
        a.identify_received(SimTime::from_secs(1), 2, 0);
        let mut b = ObservationTable::new();
        b.identify_received(SimTime::from_secs(1), 2, 0);
        b.identify_received(SimTime::from_secs(1), 1, 0);
        assert_ne!(a.checksum(), b.checksum());
        assert_eq!(a.checksum(), a.clone().checksum());
    }

    #[test]
    fn tee_sink_forwards_every_event_to_both_children() {
        let mut tee = TeeSink::new(ObservationTable::new(), CountingSink::default());
        tee.connection_opened(SimTime::from_secs(1), ConnectionId(4), 2, Direction::Inbound, 7);
        tee.identify_received(SimTime::from_secs(2), 2, 1);
        tee.connection_closed(SimTime::from_secs(3), ConnectionId(4), 2, CloseReason::PeerLeft);
        tee.peer_discovered(SimTime::from_secs(4), 9, 3);
        let (table, counter) = tee.into_parts();
        assert_eq!(table.len(), 4);
        assert_eq!(counter.total(), 4);
        assert_eq!(counter.opened, 1);
        assert_eq!(counter.discovered, 1);

        // A direct table records the identical columns.
        let mut direct = ObservationTable::new();
        direct.connection_opened(SimTime::from_secs(1), ConnectionId(4), 2, Direction::Inbound, 7);
        direct.identify_received(SimTime::from_secs(2), 2, 1);
        direct.connection_closed(SimTime::from_secs(3), ConnectionId(4), 2, CloseReason::PeerLeft);
        direct.peer_discovered(SimTime::from_secs(4), 9, 3);
        assert_eq!(table, direct);
        assert_eq!(table.checksum(), direct.checksum());
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::default();
        sink.connection_opened(SimTime::ZERO, ConnectionId(0), 0, Direction::Outbound, 0);
        sink.connection_closed(SimTime::ZERO, ConnectionId(0), 0, CloseReason::TrimmedLocal);
        sink.identify_received(SimTime::ZERO, 0, 0);
        sink.peer_discovered(SimTime::ZERO, 0, 0);
        assert_eq!(sink.total(), 4);
    }
}
