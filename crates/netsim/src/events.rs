//! Observation logs and ground truth.
//!
//! The simulator produces two kinds of output:
//!
//! * An [`ObserverLog`] per measurement node — the chronological sequence of
//!   everything that node could have recorded: connections opening and
//!   closing, identify payloads, peers discovered through routing traffic.
//!   The `measurement` crate turns these logs into the data sets the paper's
//!   clients export.
//! * A [`GroundTruth`] log of what actually happened in the simulated
//!   network (sessions, role changes), which the active-crawler baseline
//!   crawls and which validation tests compare the passive view against.

use p2pmodel::{
    CloseReason, ConnectionId, ConnectionInfo, Direction, IdentifyInfo, Multiaddr, PeerId,
};
use simclock::{SimDuration, SimTime};

/// One event observed by a measurement node.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservedEvent {
    /// A connection to `peer` was opened.
    ConnectionOpened {
        /// When the connection was opened.
        at: SimTime,
        /// Connection identifier.
        conn: ConnectionId,
        /// The remote peer.
        peer: PeerId,
        /// Direction relative to the observer.
        direction: Direction,
        /// The remote multiaddress.
        remote_addr: Multiaddr,
    },
    /// A connection was closed.
    ConnectionClosed {
        /// When the connection was closed.
        at: SimTime,
        /// Connection identifier.
        conn: ConnectionId,
        /// The remote peer.
        peer: PeerId,
        /// Ground-truth close reason (a real measurement node can only infer
        /// this; analyses that must stay faithful to the paper ignore it).
        reason: CloseReason,
    },
    /// An identify payload was received from `peer` (on connection open or as
    /// an identify push after a metadata change).
    IdentifyReceived {
        /// When the payload was received.
        at: SimTime,
        /// The remote peer.
        peer: PeerId,
        /// The payload.
        info: IdentifyInfo,
    },
    /// The observer learned about `peer` from DHT routing traffic without a
    /// direct connection (a Peerstore entry with no connection record).
    PeerDiscovered {
        /// When the peer was learned about.
        at: SimTime,
        /// The discovered peer.
        peer: PeerId,
        /// The address learned for the peer.
        addr: Multiaddr,
    },
}

impl ObservedEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match self {
            ObservedEvent::ConnectionOpened { at, .. }
            | ObservedEvent::ConnectionClosed { at, .. }
            | ObservedEvent::IdentifyReceived { at, .. }
            | ObservedEvent::PeerDiscovered { at, .. } => *at,
        }
    }

    /// The peer the event concerns.
    pub fn peer(&self) -> PeerId {
        match self {
            ObservedEvent::ConnectionOpened { peer, .. }
            | ObservedEvent::ConnectionClosed { peer, .. }
            | ObservedEvent::IdentifyReceived { peer, .. }
            | ObservedEvent::PeerDiscovered { peer, .. } => *peer,
        }
    }
}

/// The complete observation log of one measurement node.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserverLog {
    /// The observer's name (from its [`crate::ObserverSpec`]).
    pub observer: String,
    /// The observer's peer ID.
    pub peer_id: PeerId,
    /// Whether the observer ran as a DHT-Server.
    pub dht_server: bool,
    /// When the observation started.
    pub started_at: SimTime,
    /// When the observation ended.
    pub ended_at: SimTime,
    /// Chronological observed events.
    pub events: Vec<ObservedEvent>,
}

impl ObserverLog {
    /// Creates an empty log.
    pub fn new(observer: impl Into<String>, peer_id: PeerId, dht_server: bool, started_at: SimTime) -> Self {
        ObserverLog {
            observer: observer.into(),
            peer_id,
            dht_server,
            started_at,
            ended_at: started_at,
            events: Vec::new(),
        }
    }

    /// The duration covered by the log.
    pub fn duration(&self) -> SimDuration {
        self.ended_at - self.started_at
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the log contains no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over connection-opened events as [`ConnectionInfo`] records
    /// paired with their close (if observed). Convenient for analyses that
    /// want per-connection rows.
    pub fn connections(&self) -> Vec<ConnectionInfo> {
        let mut open: std::collections::HashMap<ConnectionId, ConnectionInfo> =
            std::collections::HashMap::new();
        let mut all: Vec<ConnectionId> = Vec::new();
        for event in &self.events {
            match event {
                ObservedEvent::ConnectionOpened {
                    at,
                    conn,
                    peer,
                    direction,
                    remote_addr,
                } => {
                    open.insert(
                        *conn,
                        ConnectionInfo::open(*conn, *peer, *direction, *remote_addr, *at),
                    );
                    all.push(*conn);
                }
                ObservedEvent::ConnectionClosed { at, conn, reason, .. } => {
                    if let Some(info) = open.get_mut(conn) {
                        info.close(*at, *reason);
                    }
                }
                _ => {}
            }
        }
        all.into_iter().filter_map(|id| open.remove(&id)).collect()
    }

    /// Number of distinct peers appearing anywhere in the log.
    pub fn distinct_peers(&self) -> usize {
        let mut peers: Vec<PeerId> = self.events.iter().map(ObservedEvent::peer).collect();
        peers.sort();
        peers.dedup();
        peers.len()
    }
}

/// A ground-truth event: something that actually happened in the simulated
/// network, independent of whether any observer saw it.
#[derive(Debug, Clone, PartialEq)]
pub enum GroundTruthEvent {
    /// A peer came online.
    PeerOnline {
        /// Timestamp.
        at: SimTime,
        /// The peer.
        peer: PeerId,
    },
    /// A peer went offline.
    PeerOffline {
        /// Timestamp.
        at: SimTime,
        /// The peer.
        peer: PeerId,
    },
    /// A peer's DHT role changed.
    RoleChanged {
        /// Timestamp.
        at: SimTime,
        /// The peer.
        peer: PeerId,
        /// Whether the peer is a DHT-Server after the change.
        dht_server: bool,
    },
}

impl GroundTruthEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match self {
            GroundTruthEvent::PeerOnline { at, .. }
            | GroundTruthEvent::PeerOffline { at, .. }
            | GroundTruthEvent::RoleChanged { at, .. } => *at,
        }
    }
}

/// What actually happened in the simulated network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// All peers that exist in the population, with their initial DHT role.
    pub peers: Vec<(PeerId, bool)>,
    /// Chronological ground-truth events.
    pub events: Vec<GroundTruthEvent>,
}

impl GroundTruth {
    /// The set of peers online at time `at`, together with their DHT-Server
    /// role at that time. This is what a perfect crawler could enumerate.
    pub fn online_at(&self, at: SimTime) -> Vec<(PeerId, bool)> {
        use std::collections::HashMap;
        let mut role: HashMap<PeerId, bool> = self.peers.iter().copied().collect();
        let mut online: HashMap<PeerId, bool> = HashMap::new();
        for event in &self.events {
            if event.at() > at {
                break;
            }
            match event {
                GroundTruthEvent::PeerOnline { peer, .. } => {
                    online.insert(*peer, true);
                }
                GroundTruthEvent::PeerOffline { peer, .. } => {
                    online.insert(*peer, false);
                }
                GroundTruthEvent::RoleChanged { peer, dht_server, .. } => {
                    role.insert(*peer, *dht_server);
                }
            }
        }
        online
            .into_iter()
            .filter(|(_, is_online)| *is_online)
            .map(|(peer, _)| (peer, role.get(&peer).copied().unwrap_or(false)))
            .collect()
    }

    /// Total number of distinct peers in the population.
    pub fn population_size(&self) -> usize {
        self.peers.len()
    }

    /// Number of peers whose initial role is DHT-Server.
    pub fn initial_server_count(&self) -> usize {
        self.peers.iter().filter(|(_, server)| *server).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmodel::{IpAddress, Transport};

    fn addr() -> Multiaddr {
        Multiaddr::new(IpAddress::V4(1), Transport::Tcp, 4001)
    }

    fn opened(at: u64, conn: u64, peer: u64) -> ObservedEvent {
        ObservedEvent::ConnectionOpened {
            at: SimTime::from_secs(at),
            conn: ConnectionId(conn),
            peer: PeerId::derived(peer),
            direction: Direction::Inbound,
            remote_addr: addr(),
        }
    }

    fn closed(at: u64, conn: u64, peer: u64) -> ObservedEvent {
        ObservedEvent::ConnectionClosed {
            at: SimTime::from_secs(at),
            conn: ConnectionId(conn),
            peer: PeerId::derived(peer),
            reason: CloseReason::TrimmedRemote,
        }
    }

    #[test]
    fn event_accessors() {
        let e = opened(5, 1, 2);
        assert_eq!(e.at(), SimTime::from_secs(5));
        assert_eq!(e.peer(), PeerId::derived(2));
        let d = ObservedEvent::PeerDiscovered {
            at: SimTime::from_secs(9),
            peer: PeerId::derived(3),
            addr: addr(),
        };
        assert_eq!(d.at(), SimTime::from_secs(9));
        assert_eq!(d.peer(), PeerId::derived(3));
    }

    #[test]
    fn log_reconstructs_connections() {
        let mut log = ObserverLog::new("go-ipfs", PeerId::derived(0), true, SimTime::ZERO);
        log.events.push(opened(10, 1, 100));
        log.events.push(opened(20, 2, 200));
        log.events.push(closed(70, 1, 100));
        log.ended_at = SimTime::from_secs(100);

        let conns = log.connections();
        assert_eq!(conns.len(), 2);
        let first = conns.iter().find(|c| c.id == ConnectionId(1)).unwrap();
        assert!(!first.is_open());
        assert_eq!(first.duration_at(log.ended_at), SimDuration::from_secs(60));
        let second = conns.iter().find(|c| c.id == ConnectionId(2)).unwrap();
        assert!(second.is_open());
        assert_eq!(second.duration_at(log.ended_at), SimDuration::from_secs(80));

        assert_eq!(log.distinct_peers(), 2);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.duration(), SimDuration::from_secs(100));
    }

    #[test]
    fn close_without_open_is_ignored() {
        let mut log = ObserverLog::new("x", PeerId::derived(0), false, SimTime::ZERO);
        log.events.push(closed(5, 9, 1));
        assert!(log.connections().is_empty());
    }

    #[test]
    fn ground_truth_online_at_respects_sessions_and_roles() {
        let p1 = PeerId::derived(1);
        let p2 = PeerId::derived(2);
        let gt = GroundTruth {
            peers: vec![(p1, true), (p2, false)],
            events: vec![
                GroundTruthEvent::PeerOnline { at: SimTime::from_secs(0), peer: p1 },
                GroundTruthEvent::PeerOnline { at: SimTime::from_secs(10), peer: p2 },
                GroundTruthEvent::RoleChanged { at: SimTime::from_secs(20), peer: p2, dht_server: true },
                GroundTruthEvent::PeerOffline { at: SimTime::from_secs(30), peer: p1 },
            ],
        };
        assert_eq!(gt.population_size(), 2);
        assert_eq!(gt.initial_server_count(), 1);

        let at5 = gt.online_at(SimTime::from_secs(5));
        assert_eq!(at5, vec![(p1, true)]);

        let mut at25 = gt.online_at(SimTime::from_secs(25));
        at25.sort();
        assert_eq!(at25.len(), 2);
        assert!(at25.contains(&(p2, true)), "role change must be visible");

        let at35 = gt.online_at(SimTime::from_secs(35));
        assert_eq!(at35, vec![(p2, true)]);
    }
}
