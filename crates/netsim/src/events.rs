//! Observation logs and ground truth.
//!
//! The simulator produces two kinds of output:
//!
//! * An [`ObserverLog`] per measurement node — the chronological sequence of
//!   everything that node could have recorded: connections opening and
//!   closing, identify payloads, peers discovered through routing traffic.
//!   Since the columnar refactor the log is a *view*: the events live in an
//!   [`ObservationTable`] (struct-of-arrays, 25 bytes per event) plus a
//!   shared [`IdentifyRegistry`] of interned payloads, and [`ObservedEvent`]
//!   values are materialised on demand by [`ObserverLog::events`]. Hot
//!   consumers (the `measurement` monitors, the scale harness) skip the
//!   materialisation and read the columns directly via [`ObserverLog::table`].
//! * A [`GroundTruth`] log of what actually happened in the simulated
//!   network (sessions, role changes), which the active-crawler baseline
//!   crawls and which validation tests compare the passive view against.

use crate::obs::{
    close_reason_from_payload, IdentifyRegistry, ObservationKind, ObservationSink,
    ObservationTable,
};
use p2pmodel::{
    CloseReason, ConnectionId, ConnectionInfo, Direction, IdentifyInfo, Multiaddr, PeerId,
};
use simclock::{SimDuration, SimTime};
use std::sync::Arc;

/// One event observed by a measurement node.
#[derive(Debug, Clone, PartialEq)]
pub enum ObservedEvent {
    /// A connection to `peer` was opened.
    ConnectionOpened {
        /// When the connection was opened.
        at: SimTime,
        /// Connection identifier.
        conn: ConnectionId,
        /// The remote peer.
        peer: PeerId,
        /// Direction relative to the observer.
        direction: Direction,
        /// The remote multiaddress.
        remote_addr: Multiaddr,
    },
    /// A connection was closed.
    ConnectionClosed {
        /// When the connection was closed.
        at: SimTime,
        /// Connection identifier.
        conn: ConnectionId,
        /// The remote peer.
        peer: PeerId,
        /// Ground-truth close reason (a real measurement node can only infer
        /// this; analyses that must stay faithful to the paper ignore it).
        reason: CloseReason,
    },
    /// An identify payload was received from `peer` (on connection open or as
    /// an identify push after a metadata change).
    IdentifyReceived {
        /// When the payload was received.
        at: SimTime,
        /// The remote peer.
        peer: PeerId,
        /// The payload.
        info: IdentifyInfo,
    },
    /// The observer learned about `peer` from DHT routing traffic without a
    /// direct connection (a Peerstore entry with no connection record).
    PeerDiscovered {
        /// When the peer was learned about.
        at: SimTime,
        /// The discovered peer.
        peer: PeerId,
        /// The address learned for the peer.
        addr: Multiaddr,
    },
}

impl ObservedEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match self {
            ObservedEvent::ConnectionOpened { at, .. }
            | ObservedEvent::ConnectionClosed { at, .. }
            | ObservedEvent::IdentifyReceived { at, .. }
            | ObservedEvent::PeerDiscovered { at, .. } => *at,
        }
    }

    /// The peer the event concerns.
    pub fn peer(&self) -> PeerId {
        match self {
            ObservedEvent::ConnectionOpened { peer, .. }
            | ObservedEvent::ConnectionClosed { peer, .. }
            | ObservedEvent::IdentifyReceived { peer, .. }
            | ObservedEvent::PeerDiscovered { peer, .. } => *peer,
        }
    }
}

/// The complete observation log of one measurement node.
///
/// A thin view over the columnar store: metadata fields stay public,
/// [`Self::events`] materialises the classic [`ObservedEvent`] shape on
/// demand, and [`Self::table`]/[`Self::registry`] expose the columns to hot
/// consumers. Manually built logs (tests, fixtures) are assembled with
/// [`Self::push`].
#[derive(Debug, Clone)]
pub struct ObserverLog {
    /// The observer's name (from its [`crate::ObserverSpec`]).
    pub observer: String,
    /// The observer's peer ID.
    pub peer_id: PeerId,
    /// Whether the observer ran as a DHT-Server.
    pub dht_server: bool,
    /// When the observation started.
    pub started_at: SimTime,
    /// When the observation ended.
    pub ended_at: SimTime,
    table: ObservationTable,
    registry: Arc<IdentifyRegistry>,
}

impl PartialEq for ObserverLog {
    /// Two logs are equal when their metadata and their *materialised*
    /// event sequences are equal — registry ids are an implementation
    /// detail and may differ between equal logs.
    fn eq(&self, other: &Self) -> bool {
        self.observer == other.observer
            && self.peer_id == other.peer_id
            && self.dht_server == other.dht_server
            && self.started_at == other.started_at
            && self.ended_at == other.ended_at
            && self.len() == other.len()
            && self.events().eq(other.events())
    }
}

impl ObserverLog {
    /// Creates an empty log.
    pub fn new(observer: impl Into<String>, peer_id: PeerId, dht_server: bool, started_at: SimTime) -> Self {
        ObserverLog {
            observer: observer.into(),
            peer_id,
            dht_server,
            started_at,
            ended_at: started_at,
            table: ObservationTable::new(),
            registry: Arc::new(IdentifyRegistry::new()),
        }
    }

    /// Assembles a log from a columnar table and the interning registry that
    /// resolves its ids.
    ///
    /// This is how the engine builds the logs of [`crate::Network::run`], and
    /// how tee pipelines ([`crate::TeeSink`] under
    /// [`crate::Network::run_with_sinks`]) re-assemble the classic log shape
    /// from the table half of a tee while a streaming consumer keeps the
    /// other half. The table should be time-sorted
    /// ([`ObservationTable::stable_sort_by_time`]); every id in it must have
    /// been handed out by `registry`.
    pub fn from_columns(
        observer: impl Into<String>,
        peer_id: PeerId,
        dht_server: bool,
        started_at: SimTime,
        ended_at: SimTime,
        table: ObservationTable,
        registry: Arc<IdentifyRegistry>,
    ) -> Self {
        ObserverLog {
            observer: observer.into(),
            peer_id,
            dht_server,
            started_at,
            ended_at,
            table,
            registry,
        }
    }

    /// Appends an event, interning its payload into the log's registry.
    ///
    /// This is the compatibility path for manually built logs; the engine
    /// writes columns directly through [`ObservationSink`].
    pub fn push(&mut self, event: ObservedEvent) {
        let registry = Arc::make_mut(&mut self.registry);
        match event {
            ObservedEvent::ConnectionOpened {
                at,
                conn,
                peer,
                direction,
                remote_addr,
            } => {
                let slot = registry.register_peer(peer);
                let addr_id = registry.intern_addr(remote_addr);
                self.table.connection_opened(at, conn, slot, direction, addr_id);
            }
            ObservedEvent::ConnectionClosed {
                at,
                conn,
                peer,
                reason,
            } => {
                let slot = registry.register_peer(peer);
                self.table.connection_closed(at, conn, slot, reason);
            }
            ObservedEvent::IdentifyReceived { at, peer, info } => {
                let slot = registry.register_peer(peer);
                let payload_id = registry.intern_identify(&info);
                self.table.identify_received(at, slot, payload_id);
            }
            ObservedEvent::PeerDiscovered { at, peer, addr } => {
                let slot = registry.register_peer(peer);
                let addr_id = registry.intern_addr(addr);
                self.table.peer_discovered(at, slot, addr_id);
            }
        }
    }

    /// The columnar event store backing this log.
    pub fn table(&self) -> &ObservationTable {
        &self.table
    }

    /// The interning registry resolving the table's peer slots, address ids
    /// and identify ids.
    pub fn registry(&self) -> &IdentifyRegistry {
        &self.registry
    }

    /// Materialises the event at row `index` in the classic enum shape.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn event_at(&self, index: usize) -> ObservedEvent {
        let t = &self.table;
        let at = t.at(index);
        let peer = self.registry.peer(t.peer_slot_at(index));
        match t.kind_at(index) {
            kind @ (ObservationKind::OpenedInbound | ObservationKind::OpenedOutbound) => {
                ObservedEvent::ConnectionOpened {
                    at,
                    conn: t.conn_at(index).expect("open rows carry a connection id"),
                    peer,
                    direction: kind.direction().expect("open rows have a direction"),
                    remote_addr: self.registry.addr(t.payload_at(index)),
                }
            }
            ObservationKind::Closed => ObservedEvent::ConnectionClosed {
                at,
                conn: t.conn_at(index).expect("close rows carry a connection id"),
                peer,
                reason: close_reason_from_payload(t.payload_at(index)),
            },
            ObservationKind::Identify => ObservedEvent::IdentifyReceived {
                at,
                peer,
                info: self.registry.identify(t.payload_at(index)).clone(),
            },
            ObservationKind::Discovered => ObservedEvent::PeerDiscovered {
                at,
                peer,
                addr: self.registry.addr(t.payload_at(index)),
            },
        }
    }

    /// Iterates over the log, materialising each event on demand.
    pub fn events(&self) -> impl Iterator<Item = ObservedEvent> + '_ {
        (0..self.len()).map(move |i| self.event_at(i))
    }

    /// The duration covered by the log.
    pub fn duration(&self) -> SimDuration {
        self.ended_at - self.started_at
    }

    /// Number of events in the log.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the log contains no events.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Iterates over connection-opened events as [`ConnectionInfo`] records
    /// paired with their close (if observed). Convenient for analyses that
    /// want per-connection rows. Reads the columns directly — no event
    /// materialisation.
    pub fn connections(&self) -> Vec<ConnectionInfo> {
        let mut open: std::collections::HashMap<ConnectionId, ConnectionInfo> =
            std::collections::HashMap::new();
        let mut all: Vec<ConnectionId> = Vec::new();
        let t = &self.table;
        for i in 0..t.len() {
            match t.kind_at(i) {
                kind @ (ObservationKind::OpenedInbound | ObservationKind::OpenedOutbound) => {
                    let conn = t.conn_at(i).expect("open rows carry a connection id");
                    open.insert(
                        conn,
                        ConnectionInfo::open(
                            conn,
                            self.registry.peer(t.peer_slot_at(i)),
                            kind.direction().expect("open rows have a direction"),
                            self.registry.addr(t.payload_at(i)),
                            t.at(i),
                        ),
                    );
                    all.push(conn);
                }
                ObservationKind::Closed => {
                    let conn = t.conn_at(i).expect("close rows carry a connection id");
                    if let Some(info) = open.get_mut(&conn) {
                        info.close(t.at(i), close_reason_from_payload(t.payload_at(i)));
                    }
                }
                _ => {}
            }
        }
        all.into_iter().filter_map(|id| open.remove(&id)).collect()
    }

    /// Number of distinct peers appearing anywhere in the log.
    pub fn distinct_peers(&self) -> usize {
        let mut slots: Vec<u32> = self.table.peer_slots().to_vec();
        slots.sort_unstable();
        slots.dedup();
        slots.len()
    }
}

/// A ground-truth event: something that actually happened in the simulated
/// network, independent of whether any observer saw it.
#[derive(Debug, Clone, PartialEq)]
pub enum GroundTruthEvent {
    /// A peer came online.
    PeerOnline {
        /// Timestamp.
        at: SimTime,
        /// The peer.
        peer: PeerId,
    },
    /// A peer went offline.
    PeerOffline {
        /// Timestamp.
        at: SimTime,
        /// The peer.
        peer: PeerId,
    },
    /// A peer's DHT role changed.
    RoleChanged {
        /// Timestamp.
        at: SimTime,
        /// The peer.
        peer: PeerId,
        /// Whether the peer is a DHT-Server after the change.
        dht_server: bool,
    },
}

impl GroundTruthEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match self {
            GroundTruthEvent::PeerOnline { at, .. }
            | GroundTruthEvent::PeerOffline { at, .. }
            | GroundTruthEvent::RoleChanged { at, .. } => *at,
        }
    }
}

/// What actually happened in the simulated network.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundTruth {
    /// All peers that exist in the population, with their initial DHT role.
    pub peers: Vec<(PeerId, bool)>,
    /// Chronological ground-truth events.
    pub events: Vec<GroundTruthEvent>,
}

impl GroundTruth {
    /// The set of peers online at time `at`, together with their DHT-Server
    /// role at that time, in population (slot) order. This is what a perfect
    /// crawler could enumerate.
    ///
    /// Implemented over dense per-slot columns: one `PeerId → slot` index
    /// build plus flat `Vec<bool>` role/online flags, instead of the hash
    /// map per event the enum path used — this is the crawler's hot loop at
    /// million-peer scale.
    pub fn online_at(&self, at: SimTime) -> Vec<(PeerId, bool)> {
        use std::collections::HashMap;
        let slot: HashMap<PeerId, usize> = self
            .peers
            .iter()
            .enumerate()
            .map(|(idx, (peer, _))| (*peer, idx))
            .collect();
        let mut role: Vec<bool> = self.peers.iter().map(|(_, server)| *server).collect();
        let mut online: Vec<bool> = vec![false; self.peers.len()];
        for event in &self.events {
            if event.at() > at {
                break;
            }
            match event {
                GroundTruthEvent::PeerOnline { peer, .. } => {
                    if let Some(&idx) = slot.get(peer) {
                        online[idx] = true;
                    }
                }
                GroundTruthEvent::PeerOffline { peer, .. } => {
                    if let Some(&idx) = slot.get(peer) {
                        online[idx] = false;
                    }
                }
                GroundTruthEvent::RoleChanged { peer, dht_server, .. } => {
                    if let Some(&idx) = slot.get(peer) {
                        role[idx] = *dht_server;
                    }
                }
            }
        }
        self.peers
            .iter()
            .enumerate()
            .filter(|(idx, _)| online[*idx])
            .map(|(idx, (peer, _))| (*peer, role[idx]))
            .collect()
    }

    /// Number of distinct peers online at some point during `[from, to)` —
    /// the estimand of a capture–recapture analysis whose occasions slice
    /// exactly that span (`analysis::calibration`'s window histories): the
    /// peers online when the span opens plus every later arrival inside it.
    pub fn ever_online_within(&self, from: SimTime, to: SimTime) -> usize {
        let mut seen: std::collections::BTreeSet<PeerId> =
            self.online_at(from).into_iter().map(|(peer, _)| peer).collect();
        for event in &self.events {
            if event.at() >= to {
                break;
            }
            if event.at() <= from {
                continue;
            }
            if let GroundTruthEvent::PeerOnline { peer, .. } = event {
                seen.insert(*peer);
            }
        }
        seen.len()
    }

    /// Total number of distinct peers in the population.
    pub fn population_size(&self) -> usize {
        self.peers.len()
    }

    /// Number of peers whose initial role is DHT-Server.
    pub fn initial_server_count(&self) -> usize {
        self.peers.iter().filter(|(_, server)| *server).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use p2pmodel::{IpAddress, Transport};

    fn addr() -> Multiaddr {
        Multiaddr::new(IpAddress::V4(1), Transport::Tcp, 4001)
    }

    fn opened(at: u64, conn: u64, peer: u64) -> ObservedEvent {
        ObservedEvent::ConnectionOpened {
            at: SimTime::from_secs(at),
            conn: ConnectionId(conn),
            peer: PeerId::derived(peer),
            direction: Direction::Inbound,
            remote_addr: addr(),
        }
    }

    fn closed(at: u64, conn: u64, peer: u64) -> ObservedEvent {
        ObservedEvent::ConnectionClosed {
            at: SimTime::from_secs(at),
            conn: ConnectionId(conn),
            peer: PeerId::derived(peer),
            reason: CloseReason::TrimmedRemote,
        }
    }

    #[test]
    fn event_accessors() {
        let e = opened(5, 1, 2);
        assert_eq!(e.at(), SimTime::from_secs(5));
        assert_eq!(e.peer(), PeerId::derived(2));
        let d = ObservedEvent::PeerDiscovered {
            at: SimTime::from_secs(9),
            peer: PeerId::derived(3),
            addr: addr(),
        };
        assert_eq!(d.at(), SimTime::from_secs(9));
        assert_eq!(d.peer(), PeerId::derived(3));
    }

    #[test]
    fn log_reconstructs_connections() {
        let mut log = ObserverLog::new("go-ipfs", PeerId::derived(0), true, SimTime::ZERO);
        log.push(opened(10, 1, 100));
        log.push(opened(20, 2, 200));
        log.push(closed(70, 1, 100));
        log.ended_at = SimTime::from_secs(100);

        let conns = log.connections();
        assert_eq!(conns.len(), 2);
        let first = conns.iter().find(|c| c.id == ConnectionId(1)).unwrap();
        assert!(!first.is_open());
        assert_eq!(first.duration_at(log.ended_at), SimDuration::from_secs(60));
        let second = conns.iter().find(|c| c.id == ConnectionId(2)).unwrap();
        assert!(second.is_open());
        assert_eq!(second.duration_at(log.ended_at), SimDuration::from_secs(80));

        assert_eq!(log.distinct_peers(), 2);
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
        assert_eq!(log.duration(), SimDuration::from_secs(100));
    }

    #[test]
    fn push_then_events_roundtrips_every_kind() {
        let mut log = ObserverLog::new("go-ipfs", PeerId::derived(0), true, SimTime::ZERO);
        let originals = vec![
            opened(1, 1, 100),
            ObservedEvent::IdentifyReceived {
                at: SimTime::from_secs(2),
                peer: PeerId::derived(100),
                info: IdentifyInfo::new(
                    p2pmodel::AgentVersion::parse("go-ipfs/0.11.0/"),
                    p2pmodel::ProtocolSet::go_ipfs_dht_server(),
                    vec![addr()],
                ),
            },
            closed(3, 1, 100),
            ObservedEvent::PeerDiscovered {
                at: SimTime::from_secs(4),
                peer: PeerId::derived(7),
                addr: addr(),
            },
        ];
        for event in &originals {
            log.push(event.clone());
        }
        let materialised: Vec<ObservedEvent> = log.events().collect();
        assert_eq!(materialised, originals);
        assert_eq!(log.event_at(2), originals[2]);
    }

    #[test]
    fn log_equality_is_event_equality() {
        let mut a = ObserverLog::new("x", PeerId::derived(0), true, SimTime::ZERO);
        let mut b = ObserverLog::new("x", PeerId::derived(0), true, SimTime::ZERO);
        assert_eq!(a, b);
        a.push(opened(1, 1, 5));
        assert_ne!(a, b);
        b.push(opened(1, 1, 5));
        assert_eq!(a, b);
        b.push(closed(2, 1, 5));
        assert_ne!(a, b);
    }

    #[test]
    fn close_without_open_is_ignored() {
        let mut log = ObserverLog::new("x", PeerId::derived(0), false, SimTime::ZERO);
        log.push(closed(5, 9, 1));
        assert!(log.connections().is_empty());
    }

    #[test]
    fn ground_truth_online_at_respects_sessions_and_roles() {
        let p1 = PeerId::derived(1);
        let p2 = PeerId::derived(2);
        let gt = GroundTruth {
            peers: vec![(p1, true), (p2, false)],
            events: vec![
                GroundTruthEvent::PeerOnline { at: SimTime::from_secs(0), peer: p1 },
                GroundTruthEvent::PeerOnline { at: SimTime::from_secs(10), peer: p2 },
                GroundTruthEvent::RoleChanged { at: SimTime::from_secs(20), peer: p2, dht_server: true },
                GroundTruthEvent::PeerOffline { at: SimTime::from_secs(30), peer: p1 },
            ],
        };
        assert_eq!(gt.population_size(), 2);
        assert_eq!(gt.initial_server_count(), 1);

        let at5 = gt.online_at(SimTime::from_secs(5));
        assert_eq!(at5, vec![(p1, true)]);

        let mut at25 = gt.online_at(SimTime::from_secs(25));
        at25.sort();
        assert_eq!(at25.len(), 2);
        assert!(at25.contains(&(p2, true)), "role change must be visible");

        let at35 = gt.online_at(SimTime::from_secs(35));
        assert_eq!(at35, vec![(p2, true)]);
    }

    #[test]
    fn ever_online_within_counts_residents_and_arrivals() {
        let p1 = PeerId::derived(1);
        let p2 = PeerId::derived(2);
        let p3 = PeerId::derived(3);
        let gt = GroundTruth {
            peers: vec![(p1, true), (p2, false), (p3, false)],
            events: vec![
                GroundTruthEvent::PeerOnline { at: SimTime::from_secs(0), peer: p1 },
                GroundTruthEvent::PeerOffline { at: SimTime::from_secs(8), peer: p1 },
                GroundTruthEvent::PeerOnline { at: SimTime::from_secs(10), peer: p2 },
                GroundTruthEvent::PeerOnline { at: SimTime::from_secs(40), peer: p3 },
            ],
        };
        // [5, 20): p1 is resident at 5 (offline later, still counted), p2
        // arrives inside the span, p3 arrives after it.
        assert_eq!(gt.ever_online_within(SimTime::from_secs(5), SimTime::from_secs(20)), 2);
        // The span end is exclusive; the start is a snapshot.
        assert_eq!(gt.ever_online_within(SimTime::from_secs(5), SimTime::from_secs(40)), 2);
        assert_eq!(gt.ever_online_within(SimTime::from_secs(5), SimTime::from_secs(41)), 3);
        // After p1 leaves, only arrivals count.
        assert_eq!(gt.ever_online_within(SimTime::from_secs(9), SimTime::from_secs(11)), 1);
    }
}
