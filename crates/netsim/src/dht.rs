//! Per-peer DHT routing tables, maintained by the engine and replayable by
//! the crawler.
//!
//! The engine models only observer-incident edges, so remote-to-remote
//! routing tables cannot be read off simulated traffic. Instead the
//! [`DhtTracker`] synthesises them deterministically from the events the
//! engine already emits: a server coming online bootstraps into the tables of
//! its closest online neighbours (plus one contact per doubling of the
//! distance rank — the shape of a Kademlia bucket walk), dials/identify/
//! gossip admit peers into *observer* tables, and departures evict a peer
//! from every table that holds it. The tracker draws no randomness: table
//! membership is a pure function of the ground-truth event stream, so
//! enabling or disabling it never perturbs the passive observation logs.
//!
//! The tracker's output is a [`DhtLog`]: an append-only stream of
//! [`DhtEvent`]s. `measurement::ActiveCrawler` replays the log with
//! [`DhtLog::replay`] to reconstruct every routing table as of each crawl
//! time and then walks them with iterative `FIND_NODE` lookups — the crawler
//! sees exactly what the tables would have answered, nothing more.
//!
//! Only *membership* changes are logged. `KBucket` LRU refreshes are not:
//! [`p2pmodel::RoutingTable::closest`] and bucket-full rejection depend only
//! on membership, so a membership-only replay reproduces lookup responses
//! exactly.
//!
//! [`DhtConduct`] opens the adversarial axis: Sybil tables only admit fellow
//! cluster members (and thus answer lookups with nothing but Sybils), and
//! poisoners pad replies with fabricated peer IDs that waste the crawler's
//! time budget on dial timeouts.

use crate::events::{GroundTruth, GroundTruthEvent};
use p2pmodel::kademlia::DEFAULT_BUCKET_SIZE;
use p2pmodel::{Distance, PeerId, RoutingTable};
use simclock::SimTime;
use std::collections::{BTreeSet, HashMap};

/// How a peer behaves at the DHT protocol level.
///
/// Passive behaviour (dialing, identify, gossip) is specified separately in
/// [`crate::RemotePeerSpec::behavior`]; the conduct only shapes routing-table
/// admission and lookup replies, so DHT-level adversaries can leave the
/// passive monitor view byte-identical while skewing the crawler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhtConduct {
    /// Ordinary Kademlia behaviour.
    Honest,
    /// A Sybil identity: its table admits only members of the same cluster,
    /// so every lookup that reaches it is answered with nothing but Sybils.
    Sybil {
        /// Cluster tag; Sybils of one operator share it.
        cluster: u32,
    },
    /// Answers lookups honestly but pads each reply with this many
    /// fabricated peer IDs that do not exist in the network.
    Poison {
        /// Number of junk entries per reply.
        junk_per_reply: usize,
    },
}

impl DhtConduct {
    /// Whether this is plain honest behaviour.
    pub fn is_honest(&self) -> bool {
        matches!(self, DhtConduct::Honest)
    }

    /// Whether a table owned by a peer of this conduct admits an entry of
    /// the given conduct.
    pub fn admits(&self, entry: DhtConduct) -> bool {
        match self {
            DhtConduct::Honest | DhtConduct::Poison { .. } => true,
            DhtConduct::Sybil { cluster } => {
                matches!(entry, DhtConduct::Sybil { cluster: c } if c == *cluster)
            }
        }
    }
}

/// One membership change in the network's routing tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhtEvent {
    /// A DHT-Server came online with a fresh routing table.
    Up {
        /// Timestamp.
        at: SimTime,
        /// The server.
        server: PeerId,
    },
    /// A DHT-Server went offline; its own routing table is dropped.
    Down {
        /// Timestamp.
        at: SimTime,
        /// The server.
        server: PeerId,
    },
    /// `entry` was admitted into `owner`'s routing table.
    Admit {
        /// Timestamp.
        at: SimTime,
        /// The table owner.
        owner: PeerId,
        /// The admitted peer.
        entry: PeerId,
    },
    /// `entry` was evicted from `owner`'s routing table.
    Evict {
        /// Timestamp.
        at: SimTime,
        /// The table owner.
        owner: PeerId,
        /// The evicted peer.
        entry: PeerId,
    },
}

impl DhtEvent {
    /// The timestamp of the event.
    pub fn at(&self) -> SimTime {
        match self {
            DhtEvent::Up { at, .. }
            | DhtEvent::Down { at, .. }
            | DhtEvent::Admit { at, .. }
            | DhtEvent::Evict { at, .. } => *at,
        }
    }
}

/// The routing-table history of one simulation run.
///
/// Produced by the [`DhtTracker`]; replayed with [`DhtLog::replay`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DhtLog {
    /// Bucket size the tables were maintained with.
    pub k: usize,
    /// The bootstrap peers (server observers): every crawl seeds here.
    pub bootstrap: Vec<PeerId>,
    /// Peers with non-honest conduct, sorted by PID.
    pub conduct: Vec<(PeerId, DhtConduct)>,
    /// Chronological membership events.
    pub events: Vec<DhtEvent>,
}

impl DhtLog {
    /// Starts a replay cursor at time zero.
    pub fn replay(&self) -> DhtReplay<'_> {
        DhtReplay {
            log: self,
            cursor: 0,
            view: DhtView {
                k: if self.k == 0 { DEFAULT_BUCKET_SIZE } else { self.k },
                tables: HashMap::new(),
            },
        }
    }

    /// The set of peers with non-honest conduct.
    pub fn adversaries(&self) -> BTreeSet<PeerId> {
        self.conduct.iter().map(|(peer, _)| *peer).collect()
    }

    /// The conduct of a peer (honest unless recorded otherwise).
    pub fn conduct_of(&self, peer: &PeerId) -> DhtConduct {
        match self.conduct.binary_search_by(|(p, _)| p.cmp(peer)) {
            Ok(idx) => self.conduct[idx].1,
            Err(_) => DhtConduct::Honest,
        }
    }
}

/// The state of every routing table at one instant of the replay.
#[derive(Debug, Clone)]
pub struct DhtView {
    k: usize,
    /// A table exists exactly while its owner is online.
    tables: HashMap<PeerId, RoutingTable>,
}

impl DhtView {
    /// Whether the peer is online (its table exists).
    pub fn online(&self, peer: &PeerId) -> bool {
        self.tables.contains_key(peer)
    }

    /// The peer's routing table, if it is online.
    pub fn table(&self, peer: &PeerId) -> Option<&RoutingTable> {
        self.tables.get(peer)
    }

    /// Number of online table owners.
    pub fn online_count(&self) -> usize {
        self.tables.len()
    }

    /// All online table owners in PID order. Deterministic regardless of
    /// hash-map iteration order, so callers can use it as a seed list.
    pub fn owners_sorted(&self) -> Vec<PeerId> {
        let mut owners: Vec<PeerId> = self.tables.keys().copied().collect();
        owners.sort_unstable();
        owners
    }

    fn apply(&mut self, event: &DhtEvent) {
        match event {
            DhtEvent::Up { server, .. } => {
                self.tables
                    .insert(*server, RoutingTable::with_bucket_size(*server, self.k));
            }
            DhtEvent::Down { server, .. } => {
                self.tables.remove(server);
            }
            DhtEvent::Admit { owner, entry, .. } => {
                if let Some(table) = self.tables.get_mut(owner) {
                    // The admit was logged because it succeeded live; bucket
                    // fullness depends only on membership, so it succeeds
                    // identically here.
                    table.insert(*entry);
                }
            }
            DhtEvent::Evict { owner, entry, .. } => {
                if let Some(table) = self.tables.get_mut(owner) {
                    table.remove(entry);
                }
            }
        }
    }
}

/// A forward-only cursor over a [`DhtLog`].
#[derive(Debug, Clone)]
pub struct DhtReplay<'a> {
    log: &'a DhtLog,
    cursor: usize,
    view: DhtView,
}

impl DhtReplay<'_> {
    /// Applies every event with `event.at() <= at`. Crawls advance the
    /// cursor monotonically; rewinding requires a fresh [`DhtLog::replay`].
    pub fn advance_to(&mut self, at: SimTime) {
        while let Some(event) = self.log.events.get(self.cursor) {
            if event.at() > at {
                break;
            }
            self.view.apply(event);
            self.cursor += 1;
        }
    }

    /// The table state as of the last [`Self::advance_to`].
    pub fn view(&self) -> &DhtView {
        &self.view
    }
}

/// Maintains the live routing tables during a simulation run and records
/// their membership history as a [`DhtLog`].
///
/// All methods are no-ops on a disabled tracker (the scale harness opts out
/// via [`crate::Network::with_dht_tracking`]). Nothing here consumes engine
/// randomness.
#[derive(Debug)]
pub struct DhtTracker {
    enabled: bool,
    k: usize,
    bootstrap: Vec<PeerId>,
    conduct: HashMap<PeerId, DhtConduct>,
    /// Online table owners, as a swap-remove vec + position map (iteration
    /// order never matters: neighbour selection sorts by XOR distance,
    /// which is a total order).
    online: Vec<PeerId>,
    pos: HashMap<PeerId, usize>,
    tables: HashMap<PeerId, RoutingTable>,
    /// Reverse index: entry → owners currently holding it. `BTreeSet` so
    /// eviction on departure walks owners in PID order, deterministically.
    holders: HashMap<PeerId, BTreeSet<PeerId>>,
    events: Vec<DhtEvent>,
}

impl DhtTracker {
    /// An enabled tracker with the given bucket size.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "bucket size must be positive");
        DhtTracker {
            enabled: true,
            k,
            bootstrap: Vec::new(),
            conduct: HashMap::new(),
            online: Vec::new(),
            pos: HashMap::new(),
            tables: HashMap::new(),
            holders: HashMap::new(),
            events: Vec::new(),
        }
    }

    /// A tracker that records nothing.
    pub fn disabled() -> Self {
        let mut tracker = DhtTracker::new(DEFAULT_BUCKET_SIZE);
        tracker.enabled = false;
        tracker
    }

    /// Registers a bootstrap peer (a server observer): it is brought online
    /// at time zero and every later joiner links to it.
    pub fn register_bootstrap(&mut self, peer: PeerId) {
        if !self.enabled {
            return;
        }
        self.bootstrap.push(peer);
        self.server_up(SimTime::ZERO, peer);
    }

    /// Records a peer's DHT conduct (honest peers need no record).
    pub fn set_conduct(&mut self, peer: PeerId, conduct: DhtConduct) {
        if !self.enabled || conduct.is_honest() {
            return;
        }
        self.conduct.insert(peer, conduct);
    }

    fn conduct_of(&self, peer: &PeerId) -> DhtConduct {
        self.conduct.get(peer).copied().unwrap_or(DhtConduct::Honest)
    }

    /// A DHT-Server came online: it gets a fresh table and bootstraps —
    /// symmetric links to the bootstrap observers, its `k` closest online
    /// peers, and one peer per doubling of the distance rank beyond that
    /// (the contacts an iterative self-lookup would collect, one per
    /// k-bucket). No-op if the peer is already up.
    pub fn server_up(&mut self, at: SimTime, peer: PeerId) {
        if !self.enabled || self.tables.contains_key(&peer) {
            return;
        }
        self.events.push(DhtEvent::Up { at, server: peer });
        self.tables
            .insert(peer, RoutingTable::with_bucket_size(peer, self.k));

        let mut contacts: Vec<PeerId> = self
            .bootstrap
            .iter()
            .copied()
            .filter(|b| *b != peer)
            .collect();
        let mut ranked: Vec<(Distance, PeerId)> = self
            .online
            .iter()
            .filter(|&&p| p != peer)
            .map(|&p| (p.distance(&peer), p))
            .collect();
        // XOR distances to a fixed key are distinct, so this order — and the
        // whole synthesised topology — is deterministic.
        ranked.sort_unstable_by_key(|r| r.0);
        contacts.extend(ranked.iter().take(self.k).map(|&(_, p)| p));
        let mut rank = self.k;
        while rank < ranked.len() {
            contacts.push(ranked[rank].1);
            rank *= 2;
        }
        for contact in contacts {
            self.admit(at, contact, peer);
            self.admit(at, peer, contact);
        }

        self.pos.insert(peer, self.online.len());
        self.online.push(peer);
    }

    /// A DHT-Server went offline: its own table is dropped and it is evicted
    /// from every table that holds it (owners in PID order). No-op if the
    /// peer is not up.
    pub fn server_down(&mut self, at: SimTime, peer: PeerId) {
        if !self.enabled {
            return;
        }
        let Some(table) = self.tables.remove(&peer) else {
            return;
        };
        self.events.push(DhtEvent::Down { at, server: peer });
        for entry in table.iter() {
            if let Some(holders) = self.holders.get_mut(entry) {
                holders.remove(&peer);
            }
        }
        if let Some(idx) = self.pos.remove(&peer) {
            self.online.swap_remove(idx);
            if idx < self.online.len() {
                self.pos.insert(self.online[idx], idx);
            }
        }
        if let Some(holders) = self.holders.remove(&peer) {
            for owner in holders {
                if let Some(t) = self.tables.get_mut(&owner) {
                    if t.remove(&peer) {
                        self.events.push(DhtEvent::Evict {
                            at,
                            owner,
                            entry: peer,
                        });
                    }
                }
            }
        }
    }

    /// Tries to admit `entry` into `owner`'s table. No-op when the owner is
    /// offline, the entry is already a member, the owner's conduct rejects
    /// the entry, or the target bucket is full (LRU keeps the long-lived
    /// incumbents, as go-ipfs does).
    pub fn admit(&mut self, at: SimTime, owner: PeerId, entry: PeerId) {
        if !self.enabled || owner == entry {
            return;
        }
        if !self.conduct_of(&owner).admits(self.conduct_of(&entry)) {
            return;
        }
        let Some(table) = self.tables.get_mut(&owner) else {
            return;
        };
        if table.contains(&entry) {
            // Membership-only log: an LRU refresh changes no reply.
            return;
        }
        if table.insert(entry) {
            self.holders.entry(entry).or_default().insert(owner);
            self.events.push(DhtEvent::Admit { at, owner, entry });
        }
    }

    /// Evicts `entry` from `owner`'s table, if present.
    pub fn evict(&mut self, at: SimTime, owner: PeerId, entry: PeerId) {
        if !self.enabled {
            return;
        }
        let Some(table) = self.tables.get_mut(&owner) else {
            return;
        };
        if table.remove(&entry) {
            if let Some(holders) = self.holders.get_mut(&entry) {
                holders.remove(&owner);
            }
            self.events.push(DhtEvent::Evict { at, owner, entry });
        }
    }

    /// Finalises the tracker into its log.
    pub fn into_log(self) -> DhtLog {
        let mut conduct: Vec<(PeerId, DhtConduct)> = self.conduct.into_iter().collect();
        conduct.sort_unstable_by_key(|c| c.0);
        DhtLog {
            k: self.k,
            bootstrap: self.bootstrap,
            conduct,
            events: self.events,
        }
    }
}

/// Builds the [`DhtLog`] a run over the given ground truth would have
/// produced, with every peer honest and the given bootstrap servers online
/// throughout. Tests use this to crawl synthetic populations without running
/// the engine; the engine itself feeds a [`DhtTracker`] live.
///
/// `ground_truth.events` must be sorted by time (they are, for any finished
/// run).
pub fn dht_log_from_ground_truth(ground_truth: &GroundTruth, bootstrap: &[PeerId]) -> DhtLog {
    let mut tracker = DhtTracker::new(DEFAULT_BUCKET_SIZE);
    for &peer in bootstrap {
        tracker.register_bootstrap(peer);
    }
    let mut role: HashMap<PeerId, bool> = HashMap::new();
    for &(peer, server) in &ground_truth.peers {
        role.entry(peer).or_insert(server);
    }
    let mut online: BTreeSet<PeerId> = BTreeSet::new();
    for event in &ground_truth.events {
        match event {
            GroundTruthEvent::PeerOnline { at, peer } => {
                online.insert(*peer);
                if role.get(peer).copied().unwrap_or(false) {
                    tracker.server_up(*at, *peer);
                }
            }
            GroundTruthEvent::PeerOffline { at, peer } => {
                online.remove(peer);
                tracker.server_down(*at, *peer);
            }
            GroundTruthEvent::RoleChanged {
                at,
                peer,
                dht_server,
            } => {
                role.insert(*peer, *dht_server);
                if online.contains(peer) {
                    if *dht_server {
                        tracker.server_up(*at, *peer);
                    } else {
                        tracker.server_down(*at, *peer);
                    }
                }
            }
        }
    }
    tracker.into_log()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pid(i: u64) -> PeerId {
        PeerId::derived(i)
    }

    #[test]
    fn replay_reproduces_the_live_tables_membership_for_membership() {
        let mut tracker = DhtTracker::new(4);
        tracker.register_bootstrap(pid(1000));
        for i in 0..40 {
            tracker.server_up(SimTime::from_secs(i), pid(i));
        }
        for i in (0..40).step_by(3) {
            tracker.server_down(SimTime::from_secs(100 + i), pid(i));
        }
        let live: HashMap<PeerId, BTreeSet<PeerId>> = tracker
            .tables
            .iter()
            .map(|(owner, table)| (*owner, table.iter().copied().collect()))
            .collect();
        let log = tracker.into_log();
        let mut replay = log.replay();
        replay.advance_to(SimTime::from_secs(1_000_000));
        assert_eq!(replay.view().online_count(), live.len());
        for (owner, members) in &live {
            let replayed: BTreeSet<PeerId> = replay
                .view()
                .table(owner)
                .expect("owner online in replay")
                .iter()
                .copied()
                .collect();
            assert_eq!(&replayed, members, "table of {owner:?} diverged");
        }
    }

    #[test]
    fn departures_evict_everywhere_and_rejoin_rebootstraps() {
        let mut tracker = DhtTracker::new(20);
        for i in 0..30 {
            tracker.server_up(SimTime::ZERO, pid(i));
        }
        let victim = pid(7);
        tracker.server_down(SimTime::from_secs(10), victim);
        assert!(!tracker.tables.contains_key(&victim));
        for table in tracker.tables.values() {
            assert!(!table.contains(&victim), "victim must be evicted everywhere");
        }
        tracker.server_up(SimTime::from_secs(20), victim);
        let holders = tracker
            .tables
            .iter()
            .filter(|(owner, table)| **owner != victim && table.contains(&victim))
            .count();
        assert!(holders > 0, "rejoin must re-announce the peer");
        assert!(!tracker.tables[&victim].is_empty());
    }

    #[test]
    fn sybil_tables_admit_only_their_cluster() {
        let mut tracker = DhtTracker::new(20);
        tracker.set_conduct(pid(1), DhtConduct::Sybil { cluster: 7 });
        tracker.set_conduct(pid(2), DhtConduct::Sybil { cluster: 7 });
        tracker.set_conduct(pid(3), DhtConduct::Sybil { cluster: 8 });
        for i in 0..10 {
            tracker.server_up(SimTime::ZERO, pid(i));
        }
        let sybil_table: BTreeSet<PeerId> = tracker.tables[&pid(1)].iter().copied().collect();
        assert_eq!(sybil_table, BTreeSet::from([pid(2)]), "only the same cluster");
        // Honest tables admit the sybil.
        let holders = tracker
            .tables
            .iter()
            .filter(|(owner, table)| !owner.eq(&&pid(1)) && table.contains(&pid(1)))
            .count();
        assert!(holders > 0, "honest peers must admit the sybil");
    }

    #[test]
    fn tracker_events_are_chronological_and_disabled_tracker_records_nothing() {
        let mut disabled = DhtTracker::disabled();
        disabled.register_bootstrap(pid(1));
        disabled.server_up(SimTime::ZERO, pid(2));
        assert!(disabled.into_log().events.is_empty());

        let gt = GroundTruth {
            peers: (0..20).map(|i| (pid(i), true)).collect(),
            events: (0..20)
                .map(|i| GroundTruthEvent::PeerOnline {
                    at: SimTime::from_secs(i * 5),
                    peer: pid(i),
                })
                .collect(),
        };
        let log = dht_log_from_ground_truth(&gt, &[pid(500)]);
        let mut prev = SimTime::ZERO;
        for event in &log.events {
            assert!(event.at() >= prev);
            prev = event.at();
        }
        assert!(log.adversaries().is_empty());
        assert_eq!(log.bootstrap, vec![pid(500)]);
    }
}
