//! Cross-shard full-fidelity simulation: deterministic inter-shard mailboxes.
//!
//! The classic [`crate::Network`] engine runs the whole population through one
//! event queue — perfect for the paper's 20 k-peer compatibility campaigns,
//! but a single future-event list cannot span tens of millions of peers. This
//! module partitions the population across `S` engine shards and runs the
//! shards in lock-step over sealed simulated time-slices (*epochs*), while
//! keeping the merged trace **byte-identical for any shard count and any
//! worker-thread count**.
//!
//! # Ownership
//!
//! Peers are split into contiguous global-index ranges by [`ShardMap`]
//! (`owner = map.owner(g)`, the same fat-shards-first rule the scale harness
//! uses for `shard_population`). Observers are round-robined: observer `o`
//! lives on shard `o % S`. The shard owning an entity holds its authoritative
//! state and is the only shard that consumes its RNG stream.
//!
//! # Epochs and mailboxes
//!
//! Every *cross-entity* interaction (a remote peer dialing an observer, a
//! gossip discovery, an identify push, an online/offline notice) travels with
//! a uniform latency `L` equal to the epoch length. An event emitted at time
//! `t` inside epoch `k` therefore arrives at `t + L ≥ (k+1)·L` — strictly
//! after the epoch barrier. That is the classic conservative-lookahead
//! argument: shards can process one epoch completely independently, then
//! exchange sealed mailboxes, then start the next epoch.
//!
//! At the barrier every per-`(src, dst)` mailbox is sealed, the destination
//! concatenates its inbound mailboxes in source-shard order, stable-sorts the
//! merged batch by the globally unique `(time, key)` pair and bulk-heapifies
//! it into its [`KeyedEventQueue`] via `schedule_batch`.
//!
//! # Determinism
//!
//! Three mechanisms make the trace independent of the partition:
//!
//! 1. **Total event order.** Every event carries a key
//!    `entity_id << 4 | rank` (peers: `g`; observers: `N + o`). Both drivers
//!    pop in `(time, key, insertion)` order, so handlers execute in one
//!    global order no matter how events were queued.
//! 2. **Per-entity RNG streams.** Each peer and each observer draws from its
//!    own `SimRng` seeded by `splitmix64`-folding `(seed, domain, index)`.
//!    A stream is consumed only inside its entity's handlers, which run in
//!    the total order — so the draws are identical for any partition.
//! 3. **Replicated delayed views.** Observer decisions never touch
//!    authoritative peer state; they read a `VisibleNet` replica built
//!    from broadcast notices that arrive with latency `L` in every
//!    observer-hosting shard, applied in the same total order everywhere.
//!
//! [`run_reference`] runs the identical protocol through one queue with no
//! epochs or mailboxes; differential tests pin `run_full_protocol` at any
//! shard/thread count to its byte-exact output.

use std::collections::HashMap;
use std::sync::Arc;

use p2pmodel::{CloseReason, ConnectionId, ConnectionManager, Direction, PeerId};
use simclock::rng::splitmix64;
use simclock::{KeyedEventQueue, SimDuration, SimRng, SimTime};

use crate::config::{NetworkConfig, ObserverSpec};
use crate::dht::DhtTracker;
use crate::engine::SimulationOutput;
use crate::events::{GroundTruth, GroundTruthEvent, ObserverLog};
use crate::obs::{IdentifyRegistry, ObservationSink, ObservationTable, ShardMap};

/// Event ranks for peer-keyed events (low rank pops first on time ties).
const RANK_SESSION_START: u64 = 0;
const RANK_SESSION_END: u64 = 1;
const RANK_META_FIRE: u64 = 2;
const RANK_NOTICE_ONLINE: u64 = 3;
const RANK_NOTICE_META: u64 = 4;
const RANK_NOTICE_OFFLINE: u64 = 5;
const RANK_DIAL: u64 = 6;
const RANK_GOSSIP: u64 = 7;

/// Event ranks for observer-keyed events.
const RANK_MAINT: u64 = 0;
const RANK_CLOSE: u64 = 1;
const RANK_REDIAL: u64 = 2;

/// Domain separators for per-entity RNG stream derivation.
const PEER_RNG_DOMAIN: u64 = 0x9ed1_cafe_0000_0001;
const OBSERVER_RNG_DOMAIN: u64 = 0x9ed1_cafe_0000_0002;

/// Maintenance dial attempts per pass (mirrors the classic engine's budget).
const MAINT_DIAL_BUDGET: usize = 4;

/// FNV-1a fold constants for combining per-observer table checksums.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Derives an independent RNG seed for entity `idx` in `domain` from the
/// campaign seed, via two splitmix64 folds.
fn derive_seed(seed: u64, domain: u64, idx: u64) -> u64 {
    let mut state = seed ^ domain;
    let a = splitmix64(&mut state);
    state ^= idx.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    a ^ splitmix64(&mut state)
}

/// Total-order key for a peer-owned event.
fn peer_key(g: u32, rank: u64) -> u64 {
    ((g as u64) << 4) | rank
}

/// Total-order key for an observer-owned event; `n` is the population size.
fn obs_key(n: usize, o: u32, rank: u64) -> u64 {
    (((n as u64) + o as u64) << 4) | rank
}

/// The full-protocol event vocabulary. Peer indices (`peer`) are global
/// population indices; observer indices (`obs`) are global observer indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FpEvent {
    /// A peer's session begins (owner shard).
    SessionStart { peer: u32 },
    /// A peer's session ends (owner shard).
    SessionEnd { peer: u32 },
    /// A peer's next scheduled metadata change fires (owner shard).
    MetadataFire { peer: u32 },
    /// Broadcast: peer came online (observer-hosting shards).
    NoticeOnline { peer: u32 },
    /// Broadcast: peer went offline (observer-hosting shards).
    NoticeOffline { peer: u32 },
    /// Broadcast: peer's identify payload changed (observer-hosting shards).
    NoticeMetadata { peer: u32, identify_id: u32, server: bool },
    /// A peer dials an observer (observer's owner shard).
    Dial { peer: u32, obs: u32 },
    /// An observer learns of a peer through gossip (observer's owner shard).
    Gossip { peer: u32, obs: u32 },
    /// Observer connection-manager maintenance pass (observer's owner shard).
    Maintenance { obs: u32 },
    /// The remote end of a connection trims it (observer's owner shard).
    HoldExpired { obs: u32, conn: u64 },
    /// A disconnected peer redials the observer (observer's owner shard).
    Redial { obs: u32, peer: u32 },
}

/// One sealed mailbox entry: `(arrival time, total-order key, event)`.
type MailEntry = (SimTime, u64, FpEvent);

/// Immutable population data shared by every shard through an [`Arc`].
///
/// Built once by [`freeze`]: the registry interns every peer, address and
/// identify payload (including each peer's full metadata-change chain) in
/// global population order, so all shards resolve the same ids.
struct FrozenPopulation {
    registry: Arc<IdentifyRegistry>,
    /// Population-order peer ids.
    peer_ids: Vec<PeerId>,
    /// Registry slot per peer (duplicate `PeerId`s share a slot).
    slots: Vec<u32>,
    /// Interned multiaddress id per peer.
    addr_ids: Vec<u32>,
    /// Interned id of the peer's initial identify payload.
    base_identify: Vec<u32>,
    /// Whether the peer starts as a DHT server.
    initial_server: Vec<bool>,
    /// Dialing/holding behaviour per peer (observer shards sample hold times
    /// and redial delays from the behaviour of the peer they talk to).
    behaviors: Vec<crate::spec::DialBehavior>,
    /// Whether each observer (global order) is a DHT server.
    obs_server: Vec<bool>,
}

/// Authoritative per-peer state, owned by exactly one shard.
struct PeerRuntime {
    rng: SimRng,
    session: crate::spec::SessionPattern,
    gossip_visibility: f64,
    /// Pre-resolved metadata chain: `(fire time, identify id, is_server)`.
    changes: Vec<(SimTime, u32, bool)>,
    next_change: usize,
    is_server: bool,
    online: bool,
    next_session_end: Option<SimTime>,
}

/// Delayed network view replicated on every observer-hosting shard.
///
/// Built purely from broadcast notices, which arrive with latency `L` and are
/// applied in the total event order — so every replica transitions through
/// the identical state sequence regardless of the partition.
struct VisibleNet {
    online: Vec<bool>,
    server: Vec<bool>,
    identify: Vec<u32>,
    /// Dense list of online DHT servers (maintenance dial candidates).
    servers_list: Vec<u32>,
    /// Position of peer `g` in `servers_list`, `u32::MAX` if absent.
    servers_pos: Vec<u32>,
}

impl VisibleNet {
    fn new(frozen: &FrozenPopulation) -> Self {
        let n = frozen.peer_ids.len();
        VisibleNet {
            online: vec![false; n],
            server: frozen.initial_server.clone(),
            identify: frozen.base_identify.clone(),
            servers_list: Vec::new(),
            servers_pos: vec![u32::MAX; n],
        }
    }

    fn insert_server(&mut self, g: u32) {
        if self.servers_pos[g as usize] != u32::MAX {
            return;
        }
        self.servers_pos[g as usize] = self.servers_list.len() as u32;
        self.servers_list.push(g);
    }

    fn remove_server(&mut self, g: u32) {
        let pos = self.servers_pos[g as usize];
        if pos == u32::MAX {
            return;
        }
        self.servers_pos[g as usize] = u32::MAX;
        let last = self.servers_list.len() - 1;
        self.servers_list.swap_remove(pos as usize);
        if (pos as usize) < last {
            let moved = self.servers_list[pos as usize];
            self.servers_pos[moved as usize] = pos;
        }
    }
}

/// Per-observer runtime state, owned by shard `o % S`.
struct ObserverRuntime {
    spec: ObserverSpec,
    global: u32,
    rng: SimRng,
    sink: ObservationTable,
    connmgr: ConnectionManager,
    conn_peer: HashMap<ConnectionId, (u32, Direction)>,
    peer_conn: HashMap<u32, ConnectionId>,
    outbound_open: usize,
    next_conn_id: u64,
}

/// How a shard emits cross-entity events.
enum Route {
    /// Reference mode: schedule straight into the local queue.
    Direct,
    /// Sharded mode: buffer into per-destination mailboxes, plus one
    /// broadcast lane delivered to every observer-hosting shard.
    Mailbox {
        out: Vec<Vec<MailEntry>>,
        broadcast: Vec<MailEntry>,
    },
}

/// One engine shard: a contiguous peer range, its round-robin observers, a
/// keyed event queue and the outbound mailboxes of the current epoch.
struct Shard {
    frozen: Arc<FrozenPopulation>,
    peer_start: u32,
    peers: Vec<PeerRuntime>,
    observers: Vec<ObserverRuntime>,
    visible: Option<VisibleNet>,
    queue: KeyedEventQueue<FpEvent>,
    route: Route,
    /// Ground-truth tuples `(at, peer, rank, server)`; rank 0 = online,
    /// 1 = role change, 2 = offline. Merged and sorted canonically at
    /// assembly, so per-shard buffers are order-free.
    gt: Vec<(SimTime, u32, u8, bool)>,
    end: SimTime,
    latency: SimDuration,
    peer_count: usize,
    obs_total: u32,
    shard_count: usize,
    processed: u64,
}

impl Shard {
    fn local_peer(&self, g: u32) -> usize {
        (g - self.peer_start) as usize
    }

    fn local_obs(&self, o: u32) -> usize {
        (o as usize) / self.shard_count
    }

    fn emit_to_observer(&mut self, o: u32, at: SimTime, key: u64, event: FpEvent) {
        match &mut self.route {
            Route::Direct => self.queue.schedule(at, key, event),
            Route::Mailbox { out, .. } => {
                out[(o as usize) % self.shard_count].push((at, key, event));
            }
        }
    }

    fn emit_broadcast(&mut self, at: SimTime, key: u64, event: FpEvent) {
        match &mut self.route {
            Route::Direct => {
                if self.visible.is_some() {
                    self.queue.schedule(at, key, event);
                }
            }
            Route::Mailbox { broadcast, .. } => broadcast.push((at, key, event)),
        }
    }

    /// Seeds the queue: every owned peer's first session, metadata chain and
    /// gossip sightings, and every local observer's first maintenance pass.
    fn init(&mut self) {
        let end_ms = (self.end - SimTime::ZERO).as_millis();
        let mut local: Vec<MailEntry> = Vec::with_capacity(self.peers.len() * 2);
        let mut gossip: Vec<(u32, u32, SimTime)> = Vec::new();
        for li in 0..self.peers.len() {
            let g = self.peer_start + li as u32;
            let p = &mut self.peers[li];
            let (start, end_opt) = p.session.first_session(&mut p.rng);
            p.next_session_end = end_opt;
            local.push((start, peer_key(g, RANK_SESSION_START), FpEvent::SessionStart { peer: g }));
            for &(at, _, _) in &p.changes {
                local.push((at, peer_key(g, RANK_META_FIRE), FpEvent::MetadataFire { peer: g }));
            }
            if p.gossip_visibility > 0.0 {
                for o in 0..self.obs_total {
                    if p.rng.chance(p.gossip_visibility) {
                        let at = SimTime::from_millis(p.rng.uniform_u64(0, end_ms.max(1)));
                        gossip.push((g, o, at));
                    }
                }
            }
        }
        for (g, o, at) in gossip {
            self.emit_to_observer(o, at, peer_key(g, RANK_GOSSIP), FpEvent::Gossip { peer: g, obs: o });
        }
        for li in 0..self.observers.len() {
            let ob = &self.observers[li];
            let at = SimTime::ZERO + ob.spec.maintenance_interval;
            let key = obs_key(self.peer_count, ob.global, RANK_MAINT);
            let ev = FpEvent::Maintenance { obs: ob.global };
            self.queue.schedule(at, key, ev);
        }
        self.queue.schedule_batch(local);
    }

    /// Drains the queue up to `limit` — strictly exclusive during lock-step
    /// epochs, inclusive (`pop_until`) for the final drain so every event at
    /// exactly the end time is queued before any of them is processed.
    fn run_epoch(&mut self, limit: SimTime, last: bool) {
        loop {
            let popped = if last {
                self.queue.pop_until(limit)
            } else {
                self.queue.pop_before(limit)
            };
            let Some((now, _key, event)) = popped else { break };
            self.processed += 1;
            self.dispatch(now, event);
        }
    }

    fn dispatch(&mut self, now: SimTime, event: FpEvent) {
        match event {
            FpEvent::SessionStart { peer } => self.handle_session_start(now, peer),
            FpEvent::SessionEnd { peer } => self.handle_session_end(now, peer),
            FpEvent::MetadataFire { peer } => self.handle_metadata_fire(now, peer),
            FpEvent::NoticeOnline { peer } => self.handle_notice_online(peer),
            FpEvent::NoticeOffline { peer } => self.handle_notice_offline(now, peer),
            FpEvent::NoticeMetadata { peer, identify_id, server } => {
                self.handle_notice_metadata(now, peer, identify_id, server)
            }
            FpEvent::Dial { peer, obs } => self.handle_dial(now, peer, obs),
            FpEvent::Gossip { peer, obs } => self.handle_gossip(now, peer, obs),
            FpEvent::Maintenance { obs } => self.handle_maintenance(now, obs),
            FpEvent::HoldExpired { obs, conn } => self.handle_hold_expired(now, obs, conn),
            FpEvent::Redial { obs, peer } => self.handle_redial(now, obs, peer),
        }
    }

    fn handle_session_start(&mut self, now: SimTime, g: u32) {
        let li = self.local_peer(g);
        let (session_end, is_server, dials) = {
            let p = &mut self.peers[li];
            if p.online {
                return;
            }
            p.online = true;
            let behavior = &self.frozen.behaviors[g as usize];
            let mut dials = Vec::new();
            for o in 0..self.obs_total {
                if behavior.dials(self.frozen.obs_server[o as usize], &mut p.rng) {
                    let delay = behavior.sample_redial_delay(&mut p.rng);
                    dials.push((o, delay));
                }
            }
            (p.next_session_end, p.is_server, dials)
        };
        self.gt.push((now, g, 0, is_server));
        let latency = self.latency;
        self.emit_broadcast(
            now + latency,
            peer_key(g, RANK_NOTICE_ONLINE),
            FpEvent::NoticeOnline { peer: g },
        );
        if let Some(end_at) = session_end {
            self.queue
                .schedule(end_at, peer_key(g, RANK_SESSION_END), FpEvent::SessionEnd { peer: g });
        }
        for (o, delay) in dials {
            self.emit_to_observer(
                o,
                now + latency + delay,
                peer_key(g, RANK_DIAL),
                FpEvent::Dial { peer: g, obs: o },
            );
        }
    }

    fn handle_session_end(&mut self, now: SimTime, g: u32) {
        let li = self.local_peer(g);
        let (is_server, next) = {
            let p = &mut self.peers[li];
            if !p.online {
                return;
            }
            p.online = false;
            let next = p.session.next_session(now, &mut p.rng);
            if let Some((_, end_opt)) = next {
                p.next_session_end = end_opt;
            }
            (p.is_server, next)
        };
        self.gt.push((now, g, 2, is_server));
        let latency = self.latency;
        self.emit_broadcast(
            now + latency,
            peer_key(g, RANK_NOTICE_OFFLINE),
            FpEvent::NoticeOffline { peer: g },
        );
        if let Some((start, _)) = next {
            self.queue
                .schedule(start, peer_key(g, RANK_SESSION_START), FpEvent::SessionStart { peer: g });
        }
    }

    fn handle_metadata_fire(&mut self, now: SimTime, g: u32) {
        let li = self.local_peer(g);
        let (id, server, flipped) = {
            let p = &mut self.peers[li];
            let Some(&(_, id, server)) = p.changes.get(p.next_change) else {
                return;
            };
            p.next_change += 1;
            let flipped = server != p.is_server;
            p.is_server = server;
            (id, server, flipped)
        };
        if flipped {
            self.gt.push((now, g, 1, server));
        }
        let latency = self.latency;
        self.emit_broadcast(
            now + latency,
            peer_key(g, RANK_NOTICE_META),
            FpEvent::NoticeMetadata { peer: g, identify_id: id, server },
        );
    }

    fn handle_notice_online(&mut self, g: u32) {
        let Some(v) = self.visible.as_mut() else { return };
        v.online[g as usize] = true;
        if v.server[g as usize] {
            v.insert_server(g);
        }
    }

    fn handle_notice_offline(&mut self, now: SimTime, g: u32) {
        {
            let Some(v) = self.visible.as_mut() else { return };
            v.online[g as usize] = false;
            v.remove_server(g);
        }
        for li in 0..self.observers.len() {
            if let Some(&conn) = self.observers[li].peer_conn.get(&g) {
                self.close_connection(now, li, conn, CloseReason::PeerLeft, false);
            }
        }
    }

    fn handle_notice_metadata(&mut self, now: SimTime, g: u32, id: u32, server: bool) {
        {
            let Some(v) = self.visible.as_mut() else { return };
            v.identify[g as usize] = id;
            if server != v.server[g as usize] {
                v.server[g as usize] = server;
                if v.online[g as usize] {
                    if server {
                        v.insert_server(g);
                    } else {
                        v.remove_server(g);
                    }
                }
            }
        }
        // Connected observers receive the change as an identify push.
        let slot = self.frozen.slots[g as usize];
        for ob in &mut self.observers {
            if ob.peer_conn.contains_key(&g) {
                ob.sink.identify_received(now, slot, id);
            }
        }
    }

    fn handle_dial(&mut self, now: SimTime, g: u32, o: u32) {
        let Some(v) = self.visible.as_ref() else { return };
        if !v.online[g as usize] {
            return;
        }
        let li = self.local_obs(o);
        if self.observers[li].peer_conn.contains_key(&g) {
            return;
        }
        self.open_connection(now, li, g, Direction::Inbound);
    }

    fn handle_gossip(&mut self, now: SimTime, g: u32, o: u32) {
        let li = self.local_obs(o);
        let slot = self.frozen.slots[g as usize];
        let addr = self.frozen.addr_ids[g as usize];
        self.observers[li].sink.peer_discovered(now, slot, addr);
    }

    fn handle_maintenance(&mut self, now: SimTime, o: u32) {
        let li = self.local_obs(o);
        let mut budget = MAINT_DIAL_BUDGET;
        while budget > 0 {
            let ob = &self.observers[li];
            if ob.outbound_open >= ob.spec.outbound_target {
                break;
            }
            let Some(v) = self.visible.as_ref() else { break };
            let len = v.servers_list.len();
            if len == 0 {
                break;
            }
            budget -= 1;
            let k = self.observers[li].rng.index(len);
            let g = self.visible.as_ref().expect("observer shard has a view").servers_list[k];
            if self.observers[li].peer_conn.contains_key(&g) {
                continue;
            }
            self.open_connection(now, li, g, Direction::Outbound);
        }
        let to_close = self.observers[li].connmgr.maybe_trim(now).to_close;
        for conn in to_close {
            self.close_connection(now, li, conn, CloseReason::TrimmedLocal, true);
        }
        let next = now + self.observers[li].spec.maintenance_interval;
        if next <= self.end {
            let key = obs_key(self.peer_count, o, RANK_MAINT);
            self.queue.schedule(next, key, FpEvent::Maintenance { obs: o });
        }
    }

    fn handle_hold_expired(&mut self, now: SimTime, o: u32, conn: u64) {
        let li = self.local_obs(o);
        let conn = ConnectionId(conn);
        if !self.observers[li].conn_peer.contains_key(&conn) {
            return;
        }
        self.close_connection(now, li, conn, CloseReason::TrimmedRemote, true);
    }

    fn handle_redial(&mut self, now: SimTime, o: u32, g: u32) {
        let Some(v) = self.visible.as_ref() else { return };
        if !v.online[g as usize] {
            return;
        }
        let li = self.local_obs(o);
        if self.observers[li].peer_conn.contains_key(&g) {
            return;
        }
        self.open_connection(now, li, g, Direction::Inbound);
    }

    fn open_connection(&mut self, now: SimTime, li: usize, g: u32, direction: Direction) {
        let (visible_identify, visible_server) = {
            let v = self.visible.as_ref().expect("observer shard has a view");
            (v.identify[g as usize], v.server[g as usize])
        };
        let (og, hold) = {
            let ob = &mut self.observers[li];
            let behavior = &self.frozen.behaviors[g as usize];
            let conn = ConnectionId(ob.next_conn_id);
            ob.next_conn_id += 1;
            ob.sink.connection_opened(
                now,
                conn,
                self.frozen.slots[g as usize],
                direction,
                self.frozen.addr_ids[g as usize],
            );
            ob.conn_peer.insert(conn, (g, direction));
            ob.peer_conn.insert(g, conn);
            if direction == Direction::Outbound {
                ob.outbound_open += 1;
            }
            ob.connmgr.track(conn, self.frozen.peer_ids[g as usize], now);
            let mut value = behavior.observer_value;
            if visible_server {
                value += 10;
            }
            ob.connmgr.tag(conn, value);
            if direction == Direction::Outbound {
                ob.connmgr.protect(conn);
            }
            if ob.rng.chance(behavior.identify_prob) {
                ob.sink
                    .identify_received(now, self.frozen.slots[g as usize], visible_identify);
            }
            let valued_by_remote =
                ob.spec.role.is_server() && direction == Direction::Inbound;
            let hold = behavior.sample_hold(valued_by_remote, &mut ob.rng);
            (ob.global, (conn, hold))
        };
        let (conn, hold) = hold;
        let key = obs_key(self.peer_count, og, RANK_CLOSE);
        self.queue
            .schedule(now + hold, key, FpEvent::HoldExpired { obs: og, conn: conn.0 });
    }

    fn close_connection(
        &mut self,
        now: SimTime,
        li: usize,
        conn: ConnectionId,
        reason: CloseReason,
        maybe_reconnect: bool,
    ) {
        let redial = {
            let ob = &mut self.observers[li];
            let Some((g, direction)) = ob.conn_peer.remove(&conn) else {
                return;
            };
            ob.peer_conn.remove(&g);
            if direction == Direction::Outbound {
                ob.outbound_open -= 1;
            }
            ob.connmgr.untrack(conn);
            ob.sink
                .connection_closed(now, conn, self.frozen.slots[g as usize], reason);
            if maybe_reconnect && direction == Direction::Inbound {
                let online = self
                    .visible
                    .as_ref()
                    .map(|v| v.online[g as usize])
                    .unwrap_or(false);
                let behavior = &self.frozen.behaviors[g as usize];
                if online && behavior.reconnect {
                    let delay = behavior.sample_redial_delay(&mut ob.rng);
                    Some((ob.global, g, delay))
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some((og, g, delay)) = redial {
            let key = obs_key(self.peer_count, og, RANK_REDIAL);
            self.queue
                .schedule(now + delay, key, FpEvent::Redial { obs: og, peer: g });
        }
    }

    /// Closes every still-open connection at the end of the measurement, in
    /// ascending [`ConnectionId`] order (matching the classic engine).
    fn finish(&mut self) {
        let end = self.end;
        for li in 0..self.observers.len() {
            let mut open: Vec<ConnectionId> =
                self.observers[li].conn_peer.keys().copied().collect();
            open.sort_unstable();
            for conn in open {
                self.close_connection(end, li, conn, CloseReason::MeasurementEnd, false);
            }
        }
    }

    /// Seals and removes this epoch's outbound mailboxes.
    fn take_outbox(&mut self) -> (Vec<Vec<MailEntry>>, Vec<MailEntry>) {
        match &mut self.route {
            Route::Direct => (Vec::new(), Vec::new()),
            Route::Mailbox { out, broadcast } => (
                out.iter_mut().map(std::mem::take).collect(),
                std::mem::take(broadcast),
            ),
        }
    }
}

/// Delivers every sealed mailbox: per destination, inbound entries are
/// concatenated in source-shard order (broadcast lanes only into
/// observer-hosting shards), stable-sorted by the globally unique
/// `(time, key)` pair and bulk-heapified via `schedule_batch`.
///
/// Returns `(delivered, cross_shard)` entry counts.
fn exchange(shards: &mut [Shard]) -> (u64, u64) {
    let mut delivered = 0u64;
    let mut cross = 0u64;
    let outs: Vec<(Vec<Vec<MailEntry>>, Vec<MailEntry>)> =
        shards.iter_mut().map(Shard::take_outbox).collect();
    for (d, shard) in shards.iter_mut().enumerate() {
        let host_observers = !shard.observers.is_empty();
        let mut batch: Vec<MailEntry> = Vec::new();
        for (s, (out, broadcast)) in outs.iter().enumerate() {
            if let Some(direct) = out.get(d) {
                if s != d {
                    cross += direct.len() as u64;
                }
                batch.extend_from_slice(direct);
            }
            if host_observers {
                if s != d {
                    cross += broadcast.len() as u64;
                }
                batch.extend_from_slice(broadcast);
            }
        }
        delivered += batch.len() as u64;
        batch.sort_by_key(|&(at, key, _)| (at, key));
        shard.queue.schedule_batch(batch);
    }
    (delivered, cross)
}

/// Runs `f` over every shard, round-robining shards across at most
/// `threads` scoped worker threads. The assignment is static (`shard % t`),
/// so the partition of work — and therefore the trace — is identical for
/// every thread count; threads only change wall-clock time.
fn par_shards<F: Fn(&mut Shard) + Sync>(shards: &mut [Shard], threads: usize, f: F) {
    let t = threads.max(1).min(shards.len().max(1));
    if t <= 1 {
        for shard in shards.iter_mut() {
            f(shard);
        }
        return;
    }
    let mut buckets: Vec<Vec<&mut Shard>> = (0..t).map(|_| Vec::new()).collect();
    for (i, shard) in shards.iter_mut().enumerate() {
        buckets[i % t].push(shard);
    }
    let fref = &f;
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for shard in bucket {
                    fref(shard);
                }
            });
        }
    });
}

/// Configuration of a full-protocol (reference or sharded) campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct FullProtocolConfig {
    /// Seed for every stochastic decision in the run.
    pub seed: u64,
    /// Total simulated duration.
    pub duration: SimDuration,
    /// Epoch length = uniform cross-entity latency `L`. Must be positive;
    /// sub-millisecond values are clamped to 1 ms.
    pub epoch: SimDuration,
    /// Number of engine shards (sharded driver only; clamped to ≥ 1).
    pub shards: usize,
    /// Worker threads for the lock-step epochs (does not affect the trace).
    pub threads: usize,
    /// The passive measurement nodes to deploy.
    pub observers: Vec<ObserverSpec>,
}

impl FullProtocolConfig {
    /// Creates a config with a 60 s epoch, one shard and one thread.
    pub fn new(seed: u64, duration: SimDuration, observers: Vec<ObserverSpec>) -> Self {
        FullProtocolConfig {
            seed,
            duration,
            epoch: SimDuration::from_secs(60),
            shards: 1,
            threads: 1,
            observers,
        }
    }

    /// Derives a full-protocol config from a classic [`NetworkConfig`].
    pub fn from_network(cfg: &NetworkConfig) -> Self {
        FullProtocolConfig::new(cfg.seed, cfg.duration, cfg.observers.clone())
    }

    /// Returns a copy with a different epoch length.
    pub fn with_epoch(mut self, epoch: SimDuration) -> Self {
        self.epoch = epoch;
        self
    }

    /// Returns a copy with a different shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with a different worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn latency(&self) -> SimDuration {
        self.epoch.max(SimDuration::from_millis(1))
    }
}

/// Aggregate counters of a full-protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MailboxStats {
    /// Lock-step epochs executed (0 for the reference driver).
    pub epochs: u64,
    /// Mailbox entries delivered across all exchanges (0 for reference).
    pub mailbox_events: u64,
    /// Mailbox entries whose source and destination shard differ.
    pub cross_shard_events: u64,
    /// Simulator events processed across all shards.
    pub sim_events: u64,
    /// Observation rows recorded across all observers.
    pub observations: u64,
    /// FNV-1a fold of every observer table checksum, in observer order.
    /// Byte-identical runs produce equal checksums.
    pub checksum: u64,
}

/// Result of a full-protocol run: the standard [`SimulationOutput`] plus the
/// run's [`MailboxStats`].
#[derive(Debug)]
pub struct FullProtocolRun {
    /// Observer logs, ground truth and (disabled) DHT log.
    pub output: SimulationOutput,
    /// Aggregate counters of the run.
    pub stats: MailboxStats,
}

/// Interns the whole population into one registry (global order) and builds
/// each shard's authoritative peer runtimes.
fn freeze(
    specs: Vec<crate::spec::RemotePeerSpec>,
    seed: u64,
    map: &ShardMap,
) -> (FrozenPopulation, Vec<Vec<PeerRuntime>>) {
    let n = specs.len();
    let mut registry = IdentifyRegistry::with_capacity(n);
    let mut peer_ids = Vec::with_capacity(n);
    let mut slots = Vec::with_capacity(n);
    let mut addr_ids = Vec::with_capacity(n);
    let mut base_identify = Vec::with_capacity(n);
    let mut initial_server = Vec::with_capacity(n);
    let mut behaviors = Vec::with_capacity(n);
    let mut runtimes: Vec<Vec<PeerRuntime>> = (0..map.shards())
        .map(|s| Vec::with_capacity(map.count(s)))
        .collect();
    for (g, spec) in specs.into_iter().enumerate() {
        let slot = registry.register_peer(spec.peer_id);
        let addr_id = registry.intern_addr(spec.addr);
        let base_id = registry.intern_identify(&spec.identify);
        let is_server = spec.identify.is_dht_server();
        let mut current = spec.identify.clone();
        let mut changes = Vec::with_capacity(spec.changes.len());
        for sc in &spec.changes {
            sc.change.apply(&mut current);
            let id = registry.intern_identify(&current);
            changes.push((sc.at, id, current.is_dht_server()));
        }
        peer_ids.push(spec.peer_id);
        slots.push(slot);
        addr_ids.push(addr_id);
        base_identify.push(base_id);
        initial_server.push(is_server);
        behaviors.push(spec.behavior.clone());
        runtimes[map.owner(g)].push(PeerRuntime {
            rng: SimRng::seed_from(derive_seed(seed, PEER_RNG_DOMAIN, g as u64)),
            session: spec.session.clone(),
            gossip_visibility: spec.gossip_visibility,
            changes,
            next_change: 0,
            is_server,
            online: false,
            next_session_end: None,
        });
    }
    let frozen = FrozenPopulation {
        registry: Arc::new(registry),
        peer_ids,
        slots,
        addr_ids,
        base_identify,
        initial_server,
        behaviors,
        obs_server: Vec::new(),
    };
    (frozen, runtimes)
}

/// Shared driver body; `reference` collapses to one shard with direct
/// routing and no epochs.
fn run_with(
    cfg: &FullProtocolConfig,
    specs: Vec<crate::spec::RemotePeerSpec>,
    reference: bool,
) -> FullProtocolRun {
    let n = specs.len();
    let shard_count = if reference { 1 } else { cfg.shards.max(1) };
    let map = ShardMap::new(n, shard_count);
    let (mut frozen, mut runtimes) = freeze(specs, cfg.seed, &map);
    frozen.obs_server = cfg.observers.iter().map(|o| o.role.is_server()).collect();
    let frozen = Arc::new(frozen);
    let end = SimTime::ZERO + cfg.duration;
    let latency = cfg.latency();
    let obs_total = cfg.observers.len() as u32;

    let mut shards: Vec<Shard> = (0..shard_count)
        .map(|s| {
            let observers: Vec<ObserverRuntime> = cfg
                .observers
                .iter()
                .enumerate()
                .filter(|(o, _)| o % shard_count == s)
                .map(|(o, spec)| ObserverRuntime {
                    spec: spec.clone(),
                    global: o as u32,
                    rng: SimRng::seed_from(derive_seed(cfg.seed, OBSERVER_RNG_DOMAIN, o as u64)),
                    sink: spec.presized_table(),
                    connmgr: ConnectionManager::new(spec.limits),
                    conn_peer: HashMap::with_capacity(spec.expected_connections()),
                    peer_conn: HashMap::with_capacity(spec.expected_connections()),
                    outbound_open: 0,
                    next_conn_id: 0,
                })
                .collect();
            let visible = (!observers.is_empty()).then(|| VisibleNet::new(&frozen));
            let route = if reference {
                Route::Direct
            } else {
                Route::Mailbox {
                    out: (0..shard_count).map(|_| Vec::new()).collect(),
                    broadcast: Vec::new(),
                }
            };
            Shard {
                frozen: Arc::clone(&frozen),
                peer_start: map.start(s) as u32,
                peers: std::mem::take(&mut runtimes[s]),
                observers,
                visible,
                queue: KeyedEventQueue::new(),
                route,
                gt: Vec::new(),
                end,
                latency,
                peer_count: n,
                obs_total,
                shard_count,
                processed: 0,
            }
        })
        .collect();

    let mut stats = MailboxStats::default();
    par_shards(&mut shards, cfg.threads, Shard::init);
    if !reference {
        // Upfront exchange: gossip sightings drawn at init are scheduled at
        // arbitrary times, so they must be delivered before epoch 0 starts.
        let (d, c) = exchange(&mut shards);
        stats.mailbox_events += d;
        stats.cross_shard_events += c;
        let end_ms = cfg.duration.as_millis();
        let epoch_ms = latency.as_millis();
        let mut k = 0u64;
        loop {
            let start_ms = k * epoch_ms;
            if start_ms >= end_ms {
                break;
            }
            let limit = SimTime::from_millis(((k + 1) * epoch_ms).min(end_ms));
            par_shards(&mut shards, cfg.threads, |shard| shard.run_epoch(limit, false));
            let (d, c) = exchange(&mut shards);
            stats.mailbox_events += d;
            stats.cross_shard_events += c;
            stats.epochs += 1;
            k += 1;
        }
        // Final drain: every event at exactly `end` is already queued, so
        // both drivers process the end-time tie-break in the same key order.
        par_shards(&mut shards, cfg.threads, |shard| shard.run_epoch(end, true));
    } else {
        shards[0].run_epoch(end, true);
    }
    par_shards(&mut shards, cfg.threads, Shard::finish);

    // Assembly: canonical observer order, canonical ground-truth order.
    let mut tables: Vec<(u32, ObserverSpec, ObservationTable)> = Vec::with_capacity(obs_total as usize);
    let mut gt_rows: Vec<(SimTime, u32, u8, bool)> = Vec::new();
    for shard in &mut shards {
        stats.sim_events += shard.processed;
        gt_rows.append(&mut shard.gt);
        for ob in shard.observers.drain(..) {
            tables.push((ob.global, ob.spec, ob.sink));
        }
    }
    tables.sort_by_key(|&(global, _, _)| global);
    let mut checksum = FNV_OFFSET;
    let logs: Vec<ObserverLog> = tables
        .into_iter()
        .map(|(_, spec, mut table)| {
            table.stable_sort_by_time();
            stats.observations += table.len() as u64;
            checksum = (checksum ^ table.checksum()).wrapping_mul(FNV_PRIME);
            ObserverLog::from_columns(
                spec.name,
                spec.peer_id,
                spec.role.is_server(),
                SimTime::ZERO,
                end,
                table,
                Arc::clone(&frozen.registry),
            )
        })
        .collect();
    stats.checksum = checksum;

    gt_rows.sort_by_key(|&(at, g, rank, _)| (at, g, rank));
    let events = gt_rows
        .into_iter()
        .map(|(at, g, rank, server)| {
            let peer = frozen.peer_ids[g as usize];
            match rank {
                0 => GroundTruthEvent::PeerOnline { at, peer },
                1 => GroundTruthEvent::RoleChanged { at, peer, dht_server: server },
                _ => GroundTruthEvent::PeerOffline { at, peer },
            }
        })
        .collect();
    let ground_truth = GroundTruth {
        peers: frozen
            .peer_ids
            .iter()
            .copied()
            .zip(frozen.initial_server.iter().copied())
            .collect(),
        events,
    };
    let output =
        SimulationOutput::from_logs(logs, ground_truth, DhtTracker::disabled().into_log());
    FullProtocolRun { output, stats }
}

/// Runs the full-protocol campaign sharded across `cfg.shards` lock-step
/// engine shards with deterministic inter-shard mailboxes.
///
/// The merged trace is byte-identical for every shard count and every
/// worker-thread count, and equal to [`run_reference`] on the same inputs.
pub fn run_full_protocol(
    cfg: &FullProtocolConfig,
    specs: Vec<crate::spec::RemotePeerSpec>,
) -> FullProtocolRun {
    run_with(cfg, specs, false)
}

/// Runs the identical protocol through a single keyed event queue with no
/// epochs or mailboxes — the oracle the sharded driver is pinned against.
pub fn run_reference(
    cfg: &FullProtocolConfig,
    specs: Vec<crate::spec::RemotePeerSpec>,
) -> FullProtocolRun {
    run_with(cfg, specs, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DhtRole;
    use crate::spec::{
        DialBehavior, MetadataChange, RemotePeerSpec, ScheduledChange, SessionPattern,
    };
    use p2pmodel::{AgentVersion, ConnLimits, IdentifyInfo, IpAddress, Multiaddr, ProtocolSet};

    fn tiny_population(n: usize, seed: u64) -> Vec<RemotePeerSpec> {
        let mut rng = SimRng::seed_from(seed);
        (0..n)
            .map(|i| {
                let server = rng.chance(0.6);
                let protocols = if server {
                    ProtocolSet::go_ipfs_dht_server()
                } else {
                    ProtocolSet::go_ipfs_dht_client()
                };
                let session = match rng.index(5) {
                    0 => SessionPattern::AlwaysOn,
                    1..=3 => SessionPattern::Intermittent {
                        online_median_secs: 300.0,
                        offline_median_secs: 150.0,
                        sigma: 0.8,
                        initial_delay_secs: rng.unit() * 400.0,
                    },
                    _ => SessionPattern::OneShot {
                        arrival_secs: rng.unit() * 600.0,
                        stay_secs: 400.0,
                    },
                };
                let behavior = DialBehavior {
                    dial_server_prob: 0.9,
                    dial_client_prob: 0.2,
                    redial_median_secs: 30.0,
                    redial_sigma: 0.8,
                    reconnect: true,
                    hold_server_median_secs: 120.0,
                    hold_client_median_secs: 60.0,
                    hold_sigma: 1.0,
                    identify_prob: 0.95,
                    observer_value: 0,
                };
                let mut spec = RemotePeerSpec::new(
                    PeerId::derived(i as u64),
                    Multiaddr::default_swarm(IpAddress::random_v4(&mut rng)),
                    IdentifyInfo::new(
                        AgentVersion::parse("go-ipfs/0.11.0/"),
                        protocols,
                        Vec::new(),
                    ),
                )
                .with_session(session)
                .with_behavior(behavior)
                .with_gossip_visibility(0.1);
                if i % 4 == 0 {
                    spec = spec.with_changes(vec![
                        ScheduledChange {
                            at: SimTime::from_secs(500),
                            change: MetadataChange::SetProtocols(if server {
                                ProtocolSet::go_ipfs_dht_client()
                            } else {
                                ProtocolSet::go_ipfs_dht_server()
                            }),
                        },
                        ScheduledChange {
                            at: SimTime::from_secs(900),
                            change: MetadataChange::SetAgent(AgentVersion::parse(
                                "go-ipfs/0.12.0/",
                            )),
                        },
                    ]);
                }
                spec
            })
            .collect()
    }

    fn tiny_config(seed: u64, shards: usize, threads: usize) -> FullProtocolConfig {
        let observers = vec![
            ObserverSpec::new("go-ipfs", PeerId::derived(1_000_000), DhtRole::Server, ConnLimits::new(20, 30)),
            ObserverSpec::new("hydra-h0", PeerId::derived(1_000_001), DhtRole::Server, ConnLimits::new(15, 25)),
            ObserverSpec::new("client", PeerId::derived(1_000_002), DhtRole::Client, ConnLimits::new(10, 15)),
        ];
        FullProtocolConfig::new(seed, SimDuration::from_mins(30), observers)
            .with_epoch(SimDuration::from_secs(60))
            .with_shards(shards)
            .with_threads(threads)
    }

    fn fingerprint(run: &FullProtocolRun) -> (u64, u64, Vec<usize>, usize) {
        (
            run.stats.checksum,
            run.stats.observations,
            run.output.logs.iter().map(|l| l.events().count()).collect(),
            run.output.ground_truth.events.len(),
        )
    }

    #[test]
    fn one_shard_run_matches_reference_exactly() {
        let reference = run_reference(&tiny_config(42, 1, 1), tiny_population(40, 7));
        let sharded = run_full_protocol(&tiny_config(42, 1, 1), tiny_population(40, 7));
        assert!(reference.stats.observations > 0, "campaign produced no observations");
        assert_eq!(fingerprint(&reference), fingerprint(&sharded));
        assert_eq!(
            reference.output.ground_truth.events,
            sharded.output.ground_truth.events
        );
        for (a, b) in reference.output.logs.iter().zip(&sharded.output.logs) {
            assert_eq!(a.observer, b.observer);
            let (av, bv): (Vec<_>, Vec<_>) = (a.events().collect(), b.events().collect());
            assert_eq!(av, bv);
        }
    }

    #[test]
    fn trace_is_invariant_across_shard_counts() {
        let reference = run_reference(&tiny_config(99, 1, 1), tiny_population(50, 11));
        for shards in [2usize, 4, 8] {
            let sharded = run_full_protocol(&tiny_config(99, shards, 1), tiny_population(50, 11));
            assert_eq!(
                fingerprint(&reference),
                fingerprint(&sharded),
                "shard count {shards} diverged from the reference trace"
            );
            assert_eq!(
                reference.output.ground_truth.events,
                sharded.output.ground_truth.events
            );
        }
    }

    #[test]
    fn trace_is_invariant_across_thread_counts() {
        let one = run_full_protocol(&tiny_config(7, 4, 1), tiny_population(48, 3));
        let many = run_full_protocol(&tiny_config(7, 4, 8), tiny_population(48, 3));
        assert_eq!(fingerprint(&one), fingerprint(&many));
        assert_eq!(one.output.ground_truth.events, many.output.ground_truth.events);
    }

    #[test]
    fn sharded_run_actually_crosses_shards() {
        let run = run_full_protocol(&tiny_config(5, 2, 1), tiny_population(40, 13));
        assert!(run.stats.epochs > 0, "no epochs executed");
        assert!(run.stats.mailbox_events > 0, "no mailbox traffic");
        assert!(
            run.stats.cross_shard_events > 0,
            "two shards exchanged no cross-shard events"
        );
    }

    #[test]
    fn reference_driver_reports_no_mailbox_traffic() {
        let run = run_reference(&tiny_config(5, 4, 4), tiny_population(20, 13));
        assert_eq!(run.stats.epochs, 0);
        assert_eq!(run.stats.mailbox_events, 0);
        assert_eq!(run.stats.cross_shard_events, 0);
        assert!(run.stats.sim_events > 0);
    }

    #[test]
    fn metadata_changes_surface_in_observer_logs() {
        let run = run_reference(&tiny_config(21, 1, 1), tiny_population(40, 7));
        let roles = run
            .output
            .ground_truth
            .events
            .iter()
            .filter(|e| matches!(e, GroundTruthEvent::RoleChanged { .. }))
            .count();
        assert!(roles > 0, "population scripted role flips but none fired");
        let identifies: usize = run
            .output
            .logs
            .iter()
            .map(|l| {
                l.events()
                    .filter(|e| matches!(e, crate::events::ObservedEvent::IdentifyReceived { .. }))
                    .count()
            })
            .sum();
        assert!(identifies > 0, "no identify exchanges were observed");
    }

    #[test]
    fn derive_seed_separates_domains_and_indices() {
        let a = derive_seed(1, PEER_RNG_DOMAIN, 0);
        let b = derive_seed(1, PEER_RNG_DOMAIN, 1);
        let c = derive_seed(1, OBSERVER_RNG_DOMAIN, 0);
        let d = derive_seed(2, PEER_RNG_DOMAIN, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }
}
