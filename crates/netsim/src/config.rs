//! Simulation and observer configuration.

use p2pmodel::{ConnLimits, IpAddress, Multiaddr, PeerId};
use simclock::{SimDuration, SimTime};

/// Whether a node participates in Kademlia DHT routing.
///
/// A DHT-Server answers routing queries and is therefore discoverable and
/// attractive to other peers; a DHT-Client is neither, which is why the
/// paper's P3/P4 client deployment sees far fewer and shorter connections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DhtRole {
    /// Participates in DHT routing (`/ipfs/kad/1.0.0` announced).
    Server,
    /// Uses the DHT only as a client.
    Client,
}

impl DhtRole {
    /// Whether this role announces the Kademlia protocol.
    pub fn is_server(self) -> bool {
        matches!(self, DhtRole::Server)
    }
}

impl std::fmt::Display for DhtRole {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DhtRole::Server => f.write_str("Server"),
            DhtRole::Client => f.write_str("Client"),
        }
    }
}

/// Configuration of a single passive measurement node inside the simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObserverSpec {
    /// Human-readable name used in logs and reports (e.g. `"go-ipfs"`,
    /// `"hydra-h0"`).
    pub name: String,
    /// The observer's peer ID. Hydra heads pick IDs in distinct key-space
    /// regions to widen their joint horizon.
    pub peer_id: PeerId,
    /// The observer's public address (the paper's VM had a public IPv4).
    pub addr: Multiaddr,
    /// DHT role of the observer.
    pub role: DhtRole,
    /// Connection-manager thresholds (Table I varies these per period).
    pub limits: ConnLimits,
    /// Target number of outbound connections the observer maintains through
    /// DHT routing-table maintenance. Passive nodes dial little; most of
    /// their connections are inbound.
    pub outbound_target: usize,
    /// Interval between maintenance passes (outbound dials + trim check).
    /// go-ipfs runs its connection-manager loop frequently; the paper's
    /// instrumentation refreshes every 30 s.
    pub maintenance_interval: SimDuration,
}

impl ObserverSpec {
    /// Creates an observer with go-ipfs-like defaults for the given role and
    /// limits.
    pub fn new(name: impl Into<String>, peer_id: PeerId, role: DhtRole, limits: ConnLimits) -> Self {
        ObserverSpec {
            name: name.into(),
            peer_id,
            addr: Multiaddr::default_swarm(IpAddress::V4(0x5BCD_0001)),
            role,
            limits,
            outbound_target: 40,
            maintenance_interval: SimDuration::from_secs(30),
        }
    }

    /// Returns a copy with a different public address.
    pub fn with_addr(mut self, addr: Multiaddr) -> Self {
        self.addr = addr;
        self
    }

    /// Returns a copy with a different outbound-connection target.
    pub fn with_outbound_target(mut self, target: usize) -> Self {
        self.outbound_target = target;
        self
    }

    /// Returns a copy with a different maintenance interval.
    pub fn with_maintenance_interval(mut self, interval: SimDuration) -> Self {
        self.maintenance_interval = interval;
        self
    }

    /// Expected steady-state connection count of this observer: HighWater
    /// open connections plus the dials that can arrive before the next trim
    /// pass. The single sizing heuristic behind every per-observer
    /// pre-allocation (engine connection maps, observation tables) — tune
    /// it here, not at the call sites.
    pub fn expected_connections(&self) -> usize {
        self.limits.high_water + self.limits.high_water / 4 + 16
    }

    /// A columnar observation table pre-sized for one run of this observer:
    /// every open/close pair is two rows, so one full turn-over of the
    /// connection table is reserved up front. [`crate::Network::run`] and
    /// tee pipelines share this constructor.
    pub fn presized_table(&self) -> crate::obs::ObservationTable {
        let mut table = crate::obs::ObservationTable::new();
        table.reserve(self.expected_connections() * 4);
        table
    }
}

/// Global configuration of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Seed for every stochastic decision in the run.
    pub seed: u64,
    /// Total simulated duration (the paper's periods run 1 d – 3 d, the
    /// extension run 14 d).
    pub duration: SimDuration,
    /// The passive measurement nodes to deploy.
    pub observers: Vec<ObserverSpec>,
}

impl NetworkConfig {
    /// Creates a configuration with a single observer.
    pub fn single_observer(seed: u64, duration: SimDuration, observer: ObserverSpec) -> Self {
        NetworkConfig {
            seed,
            duration,
            observers: vec![observer],
        }
    }

    /// Creates a configuration deploying several observers in one campaign
    /// (hydra heads, multi-vantage measurement fleets). Each observer feeds
    /// its own [`crate::ObservationSink`] over the run's shared
    /// [`crate::IdentifyRegistry`].
    pub fn multi_observer(seed: u64, duration: SimDuration, observers: Vec<ObserverSpec>) -> Self {
        NetworkConfig {
            seed,
            duration,
            observers,
        }
    }

    /// Registers one more observer peer in the campaign.
    pub fn push_observer(&mut self, observer: ObserverSpec) {
        self.observers.push(observer);
    }

    /// The end time of the simulation.
    pub fn end_time(&self) -> SimTime {
        SimTime::ZERO + self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_display_and_predicates() {
        assert!(DhtRole::Server.is_server());
        assert!(!DhtRole::Client.is_server());
        assert_eq!(DhtRole::Server.to_string(), "Server");
        assert_eq!(DhtRole::Client.to_string(), "Client");
    }

    #[test]
    fn observer_spec_builders() {
        let spec = ObserverSpec::new("go-ipfs", PeerId::derived(1), DhtRole::Server, ConnLimits::new(600, 900))
            .with_outbound_target(10)
            .with_maintenance_interval(SimDuration::from_secs(60));
        assert_eq!(spec.outbound_target, 10);
        assert_eq!(spec.maintenance_interval, SimDuration::from_secs(60));
        assert_eq!(spec.limits.low_water, 600);
        assert_eq!(spec.name, "go-ipfs");
    }

    #[test]
    fn network_config_end_time() {
        let spec = ObserverSpec::new("o", PeerId::derived(1), DhtRole::Client, ConnLimits::new(1, 2));
        let cfg = NetworkConfig::single_observer(7, SimDuration::from_hours(24), spec);
        assert_eq!(cfg.end_time(), SimTime::from_hours(24));
        assert_eq!(cfg.observers.len(), 1);
    }

    #[test]
    fn multi_observer_config_registers_every_vantage() {
        let spec = |n: u64| {
            ObserverSpec::new(format!("v{n}"), PeerId::derived(n), DhtRole::Server, ConnLimits::new(5, 9))
        };
        let mut cfg = NetworkConfig::multi_observer(
            7,
            SimDuration::from_hours(1),
            vec![spec(1), spec(2)],
        );
        assert_eq!(cfg.observers.len(), 2);
        cfg.push_observer(spec(3));
        assert_eq!(cfg.observers.len(), 3);
        assert_eq!(cfg.observers[2].name, "v3");
    }
}
