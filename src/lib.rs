//! Reproduction of *"Passively Measuring IPFS Churn and Network Size"*
//! (Daniel & Tschorsch, ICDCS 2022).
//!
//! The public IPFS network the paper measured is unreachable from a test
//! machine (and no longer exists in its December-2021 form), so this crate
//! family reproduces the study on a calibrated simulation:
//!
//! * [`simclock`] — discrete-event clock, scheduler, deterministic RNG,
//!   statistics.
//! * [`p2pmodel`] — peer IDs, multiaddresses, agent versions, protocols,
//!   Kademlia routing tables and the libp2p connection manager.
//! * [`netsim`] — the overlay simulator producing exactly the observables a
//!   passive measurement node has.
//! * [`population`] — the peer population calibrated to the paper's reported
//!   network composition, plus the measurement-period scenarios of Table I.
//! * [`measurement`] — the instrumented go-ipfs and hydra clients, the
//!   active-crawler baseline, the JSON data sets and the parallel
//!   multi-seed campaign sweeps.
//! * [`analysis`] — the pipelines that regenerate every table and figure.
//!
//! # Quick start
//!
//! ```
//! use ipfs_passive_measurement::prelude::*;
//!
//! // Reproduce (a scaled-down) measurement period P1: go-ipfs + 2 hydra heads.
//! let campaign = run_period(MeasurementPeriod::P1, 0.004, 42);
//! let stats = connection_stats(campaign.primary());
//! assert!(stats.all_sum > 0);
//! assert!(stats.all_avg_secs > stats.all_median_secs, "heavy-tailed durations");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use analysis;
pub use measurement;
pub use netsim;
pub use p2pmodel;
pub use population;
pub use simclock;

/// The most commonly used items, re-exported for convenient glob imports.
pub mod prelude {
    pub use analysis::{
        agent_histogram, analyze_stream, analyze_survival, analyze_vantages, calibration_report,
        chao1, chao2, classify_peers, connection_count_cdf, connection_stats, connection_timeline,
        crawl_disagreement_report, crawl_disagreement_row, direction_stats, fingerprint_groups,
        horizon_comparison, ip_grouping, jackknife1, lincoln_petersen, max_duration_cdf,
        network_size_estimate, pid_growth, protocol_histogram, robustness_report, robustness_row,
        role_switches, scenario_robustness, stream_estimates, stream_report, survival_report,
        vantage_report, version_changes, window_bootstrap_seed, CalibrationReport, CaptureHistory,
        ConnectionClass, CrawlDisagreementReport, CrawlDisagreementRow, EstimatorKind,
        RobustnessReport, StreamAnalysis, StreamEstimates, StreamReport, SurvivalCurve,
        SurvivalReport, VantageAnalysis, VantageReport, WINDOW_ESTIMATORS, WINDOW_OCCASIONS,
        WINDOW_SPAN_SECS,
    };
    pub use measurement::{
        run_period, run_replicated_vantage_suite, run_scenario, run_scenario_suite,
        run_stream_suite, run_streaming_campaign, run_sweep, run_vantage_campaign,
        run_vantage_suite, ActiveCrawler, CrawlSnapshot, CrawlSummary, GoIpfsMonitor,
        HydraMonitor, MeasurementCampaign, MeasurementDataset, ObserverTweak, ReplicateSuite,
        StreamSummary, StreamingCampaign, StreamingMonitor, SweepGrid, SweepReport, SweepRunner,
        VantageCampaign, WindowState,
    };
    pub use netsim::{
        dht_log_from_ground_truth, DhtConduct, DhtLog, DhtRole, Network, NetworkConfig,
        ObserverSpec, PopulationAction, PopulationEvent, RemotePeerSpec,
    };
    pub use p2pmodel::{
        AgentVersion, ConnLimits, IdentifyInfo, IterativeLookup, Multiaddr, PeerId, ProtocolSet,
        RoutingTable,
    };
    pub use population::{
        ChurnScenario, MeasurementPeriod, PopulationBuilder, PopulationMix, Scenario,
    };
    pub use simclock::{SimDuration, SimRng, SimTime};
}
